"""The secure delegator (SD) and the access sequencer (Section III-B).

The SD lives next to the secure channel's simple controller.  Triggered by
an encrypted 72 B packet from the processor, it runs the Path ORAM
protocol against the untrusted sub-channels, returns a 72 B response when
the read phase completes, and overlaps the write phase with whatever the
processor does next.  A request arriving during the write phase is
buffered and serviced right after it (the paper's timing-control rule).

With a split tree (D-ORAM+k) some path blocks live on normal channels.
The SD cannot reach them directly -- it emits explicit messages that the
main controllers forward (Section III-C): per remote block, a short read
packet up the secure link, a forwarded short read down the target normal
link, the 72 B data response back up the normal link and down the secure
link.  Writes ship the 72 B block the same way without a return trip.
These are the "extra messages" of Table I, and the delegator counts them
so the reproduction can check itself against that table.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.bob.channel import BobChannel
from repro.core.config import PACKET_BYTES, SHORT_PACKET_BYTES
from repro.core.recovery import FaultRecoveryError, Frame, GuardedRead
from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType, TrafficClass
from repro.obs.tracer import NULL_TRACER
from repro.oram.controller import BlockSink, OramController
from repro.oram.layout import BlockPlacement
from repro.sim.engine import Engine, ns
from repro.sim.stats import StatSet


class OramSequencer:
    """Serializes ORAM accesses through the SD's single engine.

    Protocol rhythm (identical for the delegated and on-chip engines):
    read phase -> respond -> write phase -> (buffered request, if any).

    One SD may host several ORAM *trees* (one per S-App: the III-C
    motivation runs "two S-Apps and two NS-Apps"); each tree has its own
    :class:`~repro.oram.controller.OramController`, but the engine
    processes one access at a time across all of them, so requests are
    arbitrated FIFO here.
    """

    def __init__(self, controller: OramController) -> None:
        self.controller = controller
        self._buffered: Deque[Tuple[OramController, Optional[int],
                                    Callable[[int], None]]] = deque()
        self._active_respond: Optional[Callable[[int], None]] = None
        self._active_controller: Optional[OramController] = None

    @property
    def busy(self) -> bool:
        return (
            self._active_controller is not None
            or self._active_respond is not None
            or self.controller.busy
        )

    @property
    def pending(self) -> int:
        """Accesses waiting on the single engine: the buffered FIFO plus
        the one in service (the scenario sampler's queue-depth signal)."""
        return len(self._buffered) + (1 if self.busy else 0)

    def submit(
        self,
        block_id: Optional[int],
        respond: Callable[[int], None],
        controller: Optional[OramController] = None,
    ) -> None:
        """Queue one access; ``respond(t)`` fires when its read phase ends.

        ``controller`` selects which tree the access targets (defaults to
        the sequencer's primary tree).
        """
        controller = controller or self.controller
        if self.busy:
            self._buffered.append((controller, block_id, respond))
            return
        self._start(controller, block_id, respond)

    def _start(
        self,
        controller: OramController,
        block_id: Optional[int],
        respond: Callable[[int], None],
    ) -> None:
        self._active_respond = respond
        self._active_controller = controller
        controller.begin_read(block_id, self._read_done)

    def _read_done(self, time: int) -> None:
        respond = self._active_respond
        controller = self._active_controller
        self._active_respond = None
        controller.begin_write(self._write_done)
        if respond is not None:
            respond(time)

    def _write_done(self, _time: int) -> None:
        self._active_controller = None
        if self._buffered and not self.busy:
            controller, block_id, respond = self._buffered.popleft()
            self._start(controller, block_id, respond)


class _SdResponder:
    """One armed request's SD-side lifecycle: submit, then respond.

    Mirrors the disarmed path exactly -- the submit closure in
    :meth:`SecureDelegator.receive_request` and the response send in
    ``_DelegatorOp`` stage 1 -- while recording the per-session
    completed-sequence state the retransmission protocol needs.
    """

    __slots__ = ("delegator", "session", "seq", "block_id")

    def __init__(self, delegator: "SecureDelegator", session, seq: int,
                 block_id: Optional[int]) -> None:
        self.delegator = delegator
        self.session = session
        self.seq = seq
        self.block_id = block_id

    def start(self) -> None:
        """Processing delay elapsed: queue the access on the sequencer."""
        self.delegator.sequencer.submit(
            self.block_id, self, self.session.controller
        )

    def __call__(self, _time: int) -> None:
        """Read phase finished: cache completion, respond up the link."""
        delegator = self.delegator
        state = delegator._session_state(self.session)
        state["done_seq"] = self.seq
        state["active_seq"] = 0
        delegator._send_frame(
            Frame(Frame.RESP, self.seq, self.block_id, 0, self.session)
        )


class _RemoteOp:
    """Fault-aware split-tree message chain (armed runs only).

    Stage-for-stage identical to the closure chain
    (``_forward_read`` / ``_return_read`` / ``_forward_write``), plus
    end-to-end integrity: any hop may mark the op corrupt (a ``remote``
    link packet fault or a DRAM read flip), and the MAC check where the
    block is consumed re-runs the whole message sequence, bounded by
    ``remote_retries``.  Packet drops are not absorbable here -- there
    is no per-hop ack to recover them -- so the injector counts them as
    uninjectable and delivers normally.
    """

    __slots__ = ("delegator", "bob", "placement", "op", "on_complete",
                 "stage", "corrupt", "attempts", "limit")

    def __init__(self, delegator: "SecureDelegator", bob: BobChannel,
                 placement: BlockPlacement, op: OpType,
                 on_complete: Callable[[int], None], limit: int) -> None:
        self.delegator = delegator
        self.bob = bob
        self.placement = placement
        self.op = op
        self.on_complete = on_complete
        self.stage = 0
        self.corrupt = False
        self.attempts = 1
        self.limit = limit

    def link_fault(self, kind: str) -> bool:
        if kind == "corrupt":
            self.corrupt = True
            return True
        return False

    def fault_mark_corrupt(self) -> bool:
        self.corrupt = True
        return True

    def _restart(self) -> None:
        delegator = self.delegator
        self.attempts += 1
        if self.attempts > self.limit:
            raise FaultRecoveryError(
                f"remote {self.op.name.lower()} chain corrupted "
                f"{self.limit} times; retry bound exhausted"
            )
        self.corrupt = False
        self.stage = 0
        delegator._faults.count("remote_retries")
        delegator._faults.trace(
            "remote_retry", delegator.name,
            {"op": self.op.name.lower(), "attempt": self.attempts},
        )
        size = (SHORT_PACKET_BYTES if self.op is OpType.READ
                else PACKET_BYTES)
        delegator.secure_bob.send_up(size, self, tag="remote")

    def __call__(self, time: int) -> None:
        delegator = self.delegator
        stage = self.stage
        if self.op is OpType.READ:
            if stage == 0:
                # Short read arrived at the CPU: forward down the
                # target normal link.
                self.stage = 1
                self.bob.send_down(SHORT_PACKET_BYTES, self, tag="remote")
            elif stage == 1:
                self.stage = 2
                delegator._remote_dram(
                    self.bob, self.placement, OpType.READ, self
                )
            elif stage == 2:
                # DRAM read done: 72 B block back up the normal link.
                self.stage = 3
                self.bob.send_up(PACKET_BYTES, self, tag="remote")
            elif stage == 3:
                self.stage = 4
                delegator.secure_bob.send_down(
                    PACKET_BYTES, self, tag="remote"
                )
            else:
                # Block reached the SD: MAC check is the integrity
                # gate for the whole chain.
                if self.corrupt:
                    self._restart()
                    return
                delegator._remote_done(self.on_complete, time)
        else:
            if stage == 0:
                self.stage = 1
                self.bob.send_down(PACKET_BYTES, self, tag="remote")
            elif stage == 1:
                # Block reached the target controller: verified before
                # it is committed to the tree.
                if self.corrupt:
                    self._restart()
                    return
                self.stage = 2
                delegator._remote_dram(
                    self.bob, self.placement, OpType.WRITE, self
                )
            else:
                delegator._remote_done(self.on_complete, time)


class DelegatorSink(BlockSink):
    """Routes path blocks: local sub-channels direct, remote via messages."""

    def __init__(self, delegator: "SecureDelegator") -> None:
        self.delegator = delegator

    def try_issue(self, placement, op, on_complete) -> bool:
        if placement.remote:
            return self.delegator.try_remote(placement, op, on_complete)
        return self.delegator.try_local(placement, op, on_complete)

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        self.delegator.notify_on_space(callback)


class SecureDelegator:
    """The on-board secure engine of D-ORAM."""

    #: Outstanding remote (cross-channel) block messages allowed at once.
    REMOTE_WINDOW = 16

    def __init__(
        self,
        engine: Engine,
        secure_bob: BobChannel,
        normal_bobs: Dict[int, BobChannel],
        process_ns: float = 5.0,
        app_id: int = -2,
        name: str = "sd",
        merge_short_reads: bool = False,
        tracer=None,
    ) -> None:
        """``merge_short_reads`` enables the paper's footnote-1 future
        work: short read packets destined for the same normal channel
        within one ORAM access are coalesced into a single packet per
        hop (one address list instead of 4k separate headers), cutting
        the split-tree message count on both links."""
        self.engine = engine
        self.secure_bob = secure_bob
        self.normal_bobs = normal_bobs
        self.process_ticks = ns(process_ns)
        self.app_id = app_id
        self.name = name
        self.stats = StatSet(name)
        self._tracer = (
            tracer if tracer is not None else NULL_TRACER
        ).category("sd")
        self.sink = DelegatorSink(self)
        #: Set by the system builder once the controller exists (the
        #: controller needs the sink, the sink needs the delegator).
        self.sequencer: Optional[OramSequencer] = None
        self._remote_outstanding = 0
        self._space_waiters: List[Callable[[], None]] = []
        self.merge_short_reads = merge_short_reads
        #: Pending read batches per channel: [(placement, cb), ...].
        self._merge_buffers: Dict[int, List] = {}
        self._merge_flush_scheduled = False
        #: Recovery-protocol state, populated by :meth:`arm_recovery`.
        self._recovery = None
        self._faults = None
        self._sd_site = None
        self._frame_state: Dict[object, Dict[str, object]] = {}
        self._stall_buffer: Deque = deque()
        self._stall_wake_scheduled = False

    @property
    def backlog(self) -> int:
        """Accesses queued behind this SD's single ORAM engine."""
        sequencer = self.sequencer
        return sequencer.pending if sequencer is not None else 0

    # ------------------------------------------------------------------
    # Recovery protocol (armed only when a fault plan is attached)
    # ------------------------------------------------------------------
    def arm_recovery(self, faults) -> None:
        """Enable the frame endpoint (``repro.core.recovery`` protocol).

        ``faults`` is the run's :class:`~repro.faults.inject.FaultController`;
        its delegator site (if any) supplies stall windows and the crash
        point.  With recovery armed but no faults firing, the frame path
        is schedule-identical to :meth:`receive_request`.
        """
        self._recovery = faults.recovery
        self._faults = faults
        self._sd_site = faults.sd_site()

    def receive_frame(self, frame) -> None:
        """Down-link delivery target for recovery-protocol frames."""
        site = self._sd_site
        if site is not None:
            verdict = site.blocked(self.engine.now)
            if verdict is not None:
                kind, until = verdict
                if kind == "crash":
                    # A dead SD: the frame vanishes; the CPU deadline
                    # and watchdog take it from here.
                    self._faults.count("sd_crash_drops")
                    self._faults.trace("sd_crash_drop", self.name, {})
                    return
                # Stalled: intake freezes; buffered frames drain in
                # arrival order when the window closes.
                self._faults.count("sd_stall_holds")
                self._stall_buffer.append(frame)
                if not self._stall_wake_scheduled:
                    self._stall_wake_scheduled = True
                    self.engine.at(until, self._drain_stalled)
                return
        self._process_frame(frame)

    def _drain_stalled(self) -> None:
        self._stall_wake_scheduled = False
        buffered, self._stall_buffer = self._stall_buffer, deque()
        for frame in buffered:
            # Re-check: the next window (or the crash) may already rule.
            self.receive_frame(frame)

    def _session_state(self, session) -> Dict[str, object]:
        state = self._frame_state.get(session)
        if state is None:
            state = self._frame_state[session] = {
                "done_seq": 0, "active_seq": 0, "done_resp": None,
            }
        return state

    def _process_frame(self, frame) -> None:
        session = frame.session
        state = self._session_state(session)
        if frame.corrupt:
            # MAC verification failed: answer with a NAK after the
            # usual decrypt/verify processing delay.
            self._faults.count("sd_mac_failures")
            self._faults.trace("sd_mac_fail", self.name,
                               {"seq": frame.seq})
            self.engine.after(
                self.process_ticks,
                lambda: self._send_frame(
                    Frame(Frame.NAK, 0, None, 0, session)
                ),
            )
            return
        if frame.kind != Frame.REQ:
            self._faults.count("sd_unexpected_frames")
            return
        if frame.seq == state["done_seq"]:
            # Retransmission of a completed request (our response was
            # lost or garbled): replay the cached response, don't re-run
            # the ORAM access.
            self._faults.count("sd_duplicate_requests")
            self.engine.after(
                self.process_ticks,
                lambda: self._send_frame(
                    Frame(Frame.RESP, frame.seq, frame.block_id, 0, session)
                ),
            )
            return
        if frame.seq == state["active_seq"]:
            # Retransmission of the request we are already serving; the
            # response under way will answer it.
            self._faults.count("sd_duplicate_inflight")
            return
        state["active_seq"] = frame.seq
        self.stats.counter("requests").add()
        if self._tracer.enabled:
            self._tracer.instant(
                "sd", "request", self.name, self.engine.now,
                {
                    "real": int(frame.block_id is not None),
                    "queued": int(self.sequencer.busy),
                },
            )
        responder = _SdResponder(self, session, frame.seq, frame.block_id)
        # Decrypt + authenticate + position-map consultation (same delay
        # and event shape as receive_request).
        self.engine.after(self.process_ticks, responder.start)

    def _send_frame(self, frame) -> None:
        """Ship one response/NAK frame up the secure link (if alive)."""
        if self._sd_site is not None and self._sd_site.crashed(self.engine.now):
            self._faults.count("sd_crash_drops")
            return
        self.secure_bob.send_up(
            PACKET_BYTES, frame.session._frame_arrived, arg=frame
        )

    # ------------------------------------------------------------------
    # Request entry (packets from the processor)
    # ------------------------------------------------------------------
    def receive_request(
        self,
        block_id: Optional[int],
        respond: Callable[[int], None],
        controller=None,
    ) -> None:
        """A decrypted request packet is ready for processing.

        ``respond(t)`` is invoked when the read phase finishes; the caller
        (the CPU-side backend) ships the response packet up the link.
        ``controller`` selects the target tree when the SD hosts several
        S-Apps (defaults to the primary).
        """
        if self.sequencer is None:
            raise RuntimeError("delegator not wired to a controller")
        self.stats.counter("requests").add()
        if self._tracer.enabled:
            self._tracer.instant(
                "sd", "request", self.name, self.engine.now,
                {
                    "real": int(block_id is not None),
                    "queued": int(self.sequencer.busy),
                },
            )
        # Decrypt + authenticate + position-map consultation.
        self.engine.after(
            self.process_ticks,
            lambda: self.sequencer.submit(block_id, respond, controller),
        )

    # ------------------------------------------------------------------
    # Local sub-channel traffic
    # ------------------------------------------------------------------
    def try_local(
        self,
        placement: BlockPlacement,
        op: OpType,
        on_complete: Callable[[int], None],
    ) -> bool:
        sub = self.secure_bob.subchannels[placement.subchannel]
        if not sub.can_accept(op):
            return False
        if self._recovery is not None and op is OpType.READ:
            # The SD MAC-checks every path block it reads; a transient
            # flip re-issues the block while the sequencer's read phase
            # stays open (GuardedRead holds the completion back).
            guard = GuardedRead(on_complete, self._faults,
                                self._recovery.block_read_retries)
            on_complete = guard
        req = MemRequest(
            op, placement.channel, placement.subchannel,
            placement.bank, placement.row, placement.col,
            self.app_id, TrafficClass.SECURE, 0, on_complete,
        )
        if on_complete.__class__ is GuardedRead:
            on_complete.reissue = (
                lambda s=sub, r=req: self._enqueue_or_hold(s, r)
            )
        sub.enqueue(req)
        return True

    # ------------------------------------------------------------------
    # Remote split-tree traffic (Section III-C)
    # ------------------------------------------------------------------
    def try_remote(
        self,
        placement: BlockPlacement,
        op: OpType,
        on_complete: Callable[[int], None],
    ) -> bool:
        if self._remote_outstanding >= self.REMOTE_WINDOW:
            return False
        bob = self.normal_bobs[placement.channel]
        self._remote_outstanding += 1
        if self._tracer.enabled:
            self._tracer.instant(
                "sd",
                "remote_read" if op is OpType.READ else "remote_write",
                self.name, self.engine.now,
                {"ch": placement.channel, "bucket": placement.bucket},
            )
        if op is OpType.READ:
            self.stats.counter("remote_read_blocks").add()
            self.stats.counter(f"ch{placement.channel}_reads").add()
            if self.merge_short_reads:
                # Footnote-1 future work: coalesce this access's short
                # reads per target channel; flushed once the current
                # issue burst settles (same-tick event).
                self._merge_buffers.setdefault(
                    placement.channel, []
                ).append((placement, on_complete))
                if not self._merge_flush_scheduled:
                    self._merge_flush_scheduled = True
                    self.engine.after(0, self._flush_merged)
                return True
            self.stats.counter("remote_short_reads").add()
            if self._recovery is not None:
                # Armed: the chain is an inspectable op object so link
                # and DRAM faults can mark it and retries are bounded.
                self.secure_bob.send_up(
                    SHORT_PACKET_BYTES,
                    _RemoteOp(self, bob, placement, OpType.READ,
                              on_complete, self._recovery.remote_retries),
                    tag="remote",
                )
                return True
            # SD -> CPU (short read, up the secure link) ...
            self.secure_bob.send_up(
                SHORT_PACKET_BYTES,
                lambda _t: self._forward_read(bob, placement, on_complete),
                tag="remote",
            )
        else:
            self.stats.counter("remote_writes").add()
            self.stats.counter(f"ch{placement.channel}_writes").add()
            if self._recovery is not None:
                self.secure_bob.send_up(
                    PACKET_BYTES,
                    _RemoteOp(self, bob, placement, OpType.WRITE,
                              on_complete, self._recovery.remote_retries),
                    tag="remote",
                )
                return True
            # SD -> CPU (72 B write packet carrying the block) ...
            self.secure_bob.send_up(
                PACKET_BYTES,
                lambda _t: self._forward_write(bob, placement, on_complete),
                tag="remote",
            )
        return True

    def _flush_merged(self) -> None:
        """Ship one coalesced read packet per buffered normal channel."""
        self._merge_flush_scheduled = False
        buffers, self._merge_buffers = self._merge_buffers, {}
        for channel, entries in sorted(buffers.items()):
            bob = self.normal_bobs[channel]
            # Header + one extra 8 B address per additional block.
            nbytes = SHORT_PACKET_BYTES + 8 * (len(entries) - 1)
            self.stats.counter("remote_short_reads").add()
            if self._tracer.enabled:
                self._tracer.instant(
                    "sd", "merged_read", self.name, self.engine.now,
                    {"ch": channel, "blocks": len(entries), "bytes": nbytes},
                )
            self.secure_bob.send_up(
                nbytes,
                lambda _t, b=bob, e=entries, n=nbytes:
                    self._forward_merged(b, e, n),
                tag="remote",
            )

    def _forward_merged(self, bob: BobChannel, entries, nbytes: int) -> None:
        """CPU forwards the coalesced packet; blocks fan out at DRAM."""
        def arrived(_t: int) -> None:
            for placement, on_complete in entries:
                self._remote_dram(
                    bob, placement, OpType.READ,
                    lambda t2, cb=on_complete: self._return_read(bob, cb),
                )

        bob.send_down(nbytes, arrived, tag="remote")

    def _forward_read(
        self,
        bob: BobChannel,
        placement: BlockPlacement,
        on_complete: Callable[[int], None],
    ) -> None:
        # ... CPU -> normal channel (short read, down its link) ...
        bob.send_down(
            SHORT_PACKET_BYTES,
            lambda _t: self._remote_dram(
                bob, placement, OpType.READ,
                lambda t2: self._return_read(bob, on_complete),
            ),
            tag="remote",
        )

    def _return_read(
        self, bob: BobChannel, on_complete: Callable[[int], None]
    ) -> None:
        # ... DRAM read done: normal channel -> CPU (72 B response) ...
        bob.send_up(
            PACKET_BYTES,
            lambda _t: self.secure_bob.send_down(
                PACKET_BYTES,
                lambda t2: self._remote_done(on_complete, t2),
                tag="remote",
            ),
            tag="remote",
        )

    def _forward_write(
        self,
        bob: BobChannel,
        placement: BlockPlacement,
        on_complete: Callable[[int], None],
    ) -> None:
        bob.send_down(
            PACKET_BYTES,
            lambda _t: self._remote_dram(
                bob, placement, OpType.WRITE,
                lambda t2: self._remote_done(on_complete, t2),
            ),
            tag="remote",
        )

    def _remote_dram(
        self,
        bob: BobChannel,
        placement: BlockPlacement,
        op: OpType,
        on_complete: Callable[[int], None],
    ) -> None:
        """Queue the block access at the normal channel's sub-channel."""
        sub = bob.subchannels[placement.subchannel]
        req = MemRequest(
            op, placement.channel, placement.subchannel,
            placement.bank, placement.row, placement.col,
            self.app_id, TrafficClass.SECURE, 0, on_complete,
        )
        self._enqueue_or_hold(sub, req)

    def _enqueue_or_hold(self, sub: Channel, req: MemRequest) -> None:
        if sub.can_accept(req.op):
            sub.enqueue(req)
        else:
            sub.notify_on_space(lambda: self._enqueue_or_hold(sub, req))

    def _remote_done(
        self, on_complete: Callable[[int], None], time: int
    ) -> None:
        self._remote_outstanding -= 1
        self._wake_waiters()
        on_complete(time)

    # ------------------------------------------------------------------
    def notify_on_space(self, callback: Callable[[], None]) -> None:
        """One-shot wake when local queues or the remote window free up."""
        fired = [False]

        def once() -> None:
            if not fired[0]:
                fired[0] = True
                callback()

        for sub in self.secure_bob.subchannels:
            sub.notify_on_space(once)
        self._space_waiters.append(once)

    def _wake_waiters(self) -> None:
        if not self._space_waiters:
            return
        waiters, self._space_waiters = self._space_waiters, []
        for callback in waiters:
            callback()
