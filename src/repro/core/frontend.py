"""The on-chip secure engine: S-App memory port + fixed-rate emission.

The S-App core sees an ordinary :class:`~repro.cpu.core.MemoryPort`; the
frontend queues its LLC misses and emits exactly one ORAM request every
``t`` cycles after the previous response (a dummy when the queue is
empty), per Section III-B.  Emission goes to a *backend*:

* :class:`DelegatorBackend` -- D-ORAM: seal a 72 B packet, ship it down
  the secure channel's serial link to the SD, receive the 72 B response
  on the up link.
* :class:`OnChipBackend` -- the Path ORAM baseline: the engine and ORAM
  controller are on the processor; the "response" is the read phase
  completing at the on-chip controller.

Either way, the S-App load completes at the response, and stores complete
when accepted (the ORAM write happens obliviously later).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.bob.channel import BobChannel
from repro.core.config import PACKET_BYTES
from repro.core.delegator import OramSequencer, SecureDelegator
from repro.core.timing_guard import RequestPacer
from repro.cpu.core import MemoryPort
from repro.dram.commands import OpType
from repro.obs.tracer import NULL_TRACER
from repro.oram.controller import OramController
from repro.sim.engine import Engine, ns
from repro.sim.stats import StatSet


class OramBackend:
    """Interface: carry one request to the ORAM engine and back."""

    def submit(
        self, block_id: Optional[int], on_response: Callable[[int], None]
    ) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def num_user_blocks(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError


class _DelayedResponse:
    """Schedule ``on_response(now)`` a fixed delay after a completion.

    ``engine.now`` at dispatch equals the scheduled tick, so passing the
    tick through ``call_at`` is identical to the former
    ``at(when, lambda: on_response(engine.now))`` -- without the two
    closures per ORAM operation.
    """

    __slots__ = ("engine", "delay", "on_response")

    def __init__(self, engine: Engine, delay: int, on_response) -> None:
        self.engine = engine
        self.delay = delay
        self.on_response = on_response

    def __call__(self, time: int) -> None:
        when = time + self.delay
        self.engine.call_at(when, self.on_response, when)


class DelegatorBackend(OramBackend):
    """Packets over the secure BOB link to the SD."""

    def __init__(
        self,
        engine: Engine,
        secure_bob: BobChannel,
        delegator: SecureDelegator,
        cpu_process_ns: float = 2.0,
        controller: Optional[OramController] = None,
    ) -> None:
        """``controller`` binds this backend to one tree when the SD
        hosts several S-Apps; ``None`` uses the SD's primary tree."""
        self.engine = engine
        self.secure_bob = secure_bob
        self.delegator = delegator
        self.cpu_process_ticks = ns(cpu_process_ns)
        self.controller = controller

    @property
    def num_user_blocks(self) -> int:
        if self.controller is not None:
            return self.controller.config.num_user_blocks
        assert self.delegator.sequencer is not None
        return self.delegator.sequencer.controller.config.num_user_blocks

    def submit(
        self, block_id: Optional[int], on_response: Callable[[int], None]
    ) -> None:
        # CPU -> SD request packet (OTP-sealed, fixed 72 B); the op
        # object carries itself through the three stages.
        self.secure_bob.send_down(
            PACKET_BYTES, _DelegatorOp(self, block_id, on_response)
        )


class _DelegatorOp:
    """One D-ORAM operation's round trip, one allocation.

    Stage 0: request packet arrives at the SD -> hand to the delegator.
    Stage 1: the ORAM read finishes -> response packet up the link.
    Stage 2: response arrives at the CPU -> ``on_response`` after the
    CPU-side decrypt/check delay.  Each stage is invoked exactly once,
    in order, so a single callable with a stage counter replaces the
    four closures the submit path used to allocate.
    """

    __slots__ = ("backend", "block_id", "on_response", "stage")

    def __init__(self, backend: DelegatorBackend, block_id, on_response) -> None:
        self.backend = backend
        self.block_id = block_id
        self.on_response = on_response
        self.stage = 0

    def __call__(self, time: int) -> None:
        backend = self.backend
        stage = self.stage
        if stage == 0:
            self.stage = 1
            backend.delegator.receive_request(
                self.block_id, self, backend.controller
            )
        elif stage == 1:
            # SD -> CPU response packet; decrypt/check at the CPU side.
            self.stage = 2
            backend.secure_bob.send_up(PACKET_BYTES, self)
        else:
            when = time + backend.cpu_process_ticks
            backend.engine.call_at(when, self.on_response, when)


class OnChipBackend(OramBackend):
    """The Path ORAM baseline: engine on the processor die."""

    def __init__(self, engine: Engine, controller: OramController,
                 crypto_ns: float = 2.0) -> None:
        self.engine = engine
        self.sequencer = OramSequencer(controller)
        self.crypto_ticks = ns(crypto_ns)

    @property
    def num_user_blocks(self) -> int:
        return self.sequencer.controller.config.num_user_blocks

    def submit(
        self, block_id: Optional[int], on_response: Callable[[int], None]
    ) -> None:
        self.sequencer.submit(
            block_id,
            _DelayedResponse(self.engine, self.crypto_ticks, on_response),
        )


class OramFrontend(MemoryPort):
    """S-App memory port with fixed-rate real/dummy emission."""

    def __init__(
        self,
        engine: Engine,
        backend: OramBackend,
        t_cycles: int = 50,
        queue_depth: int = 8,
        name: str = "oram_fe",
        tracer=None,
    ) -> None:
        self.engine = engine
        self.backend = backend
        self.pacer = RequestPacer(t_cycles, name=f"{name}.pacer")
        self.queue_depth = queue_depth
        self.name = name
        self.stats = StatSet(name)
        self._tracer = (
            tracer if tracer is not None else NULL_TRACER
        ).category("oram")
        self._queue: Deque[Tuple[bool, int, Optional[Callable[[int], None]]]] = deque()
        self._inflight = False
        self._space_waiters: list = []
        self._emit_scheduled = False
        self._app_requests_add = self.stats.counter("app_requests").add
        self._backlog_record = self.stats.histogram("backlog").record
        self._response_record = self.stats.latency("oram_response").record
        # In-flight emission context for the bound _on_response (at most
        # one request is in flight at a time, so instance fields replace
        # the closure the emit path used to allocate per emission).
        self._resp_issued_at = 0
        self._resp_real = False
        self._resp_is_write = False
        self._resp_on_complete: Optional[Callable[[int], None]] = None

    def start(self) -> None:
        """Begin the fixed-rate emission loop at time zero."""
        self._schedule_emit(self.engine.now)

    # ------------------------------------------------------------------
    # MemoryPort (S-App core side)
    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        """App requests waiting behind the fixed-rate emitter."""
        return len(self._queue)

    def can_accept(self, op: OpType) -> bool:
        return len(self._queue) < self.queue_depth

    def issue(
        self,
        op: OpType,
        line_addr: int,
        app_id: int,
        on_complete: Optional[Callable[[int], None]],
    ) -> None:
        if not self.can_accept(op):
            raise RuntimeError("ORAM frontend queue full")
        block_id = line_addr % self.backend.num_user_blocks
        self._queue.append((op is OpType.WRITE, block_id, on_complete))
        self._app_requests_add()

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        self._space_waiters.append(callback)

    # ------------------------------------------------------------------
    # Fixed-rate emission
    # ------------------------------------------------------------------
    def _schedule_emit(self, time: int) -> None:
        if self._emit_scheduled:
            return
        self._emit_scheduled = True
        self.engine.at(max(time, self.engine.now), self._emit)

    def _emit(self) -> None:
        self._emit_scheduled = False
        if self._inflight:
            return
        if self._queue:
            is_write, block_id, on_complete = self._queue.popleft()
            self._wake_space_waiters()
            real = True
        else:
            is_write, block_id, on_complete = False, None, None
            real = False
        self.pacer.emitted(real)
        self._backlog_record(len(self._queue))
        self._inflight = True
        issued_at = self.engine.now
        tracer = self._tracer
        if tracer.enabled:
            # The ground truth the leakage check correlates with the
            # wire: real and dummy emissions must look identical there.
            tracer.instant(
                "oram", "emit", self.name, issued_at, {"real": int(real)}
            )
        self._resp_issued_at = issued_at
        self._resp_real = real
        self._resp_is_write = is_write
        self._resp_on_complete = on_complete
        self.backend.submit(block_id, self._on_response)

    def _on_response(self, time: int) -> None:
        self._inflight = False
        issued_at = self._resp_issued_at
        on_complete = self._resp_on_complete
        self._resp_on_complete = None
        self._response_record(time - issued_at)
        tracer = self._tracer
        if tracer.enabled:
            tracer.instant(
                "oram", "response", self.name, time,
                {"lat": time - issued_at, "real": int(self._resp_real)},
            )
        if on_complete is not None and not self._resp_is_write:
            on_complete(time)
        self._schedule_emit(self.pacer.response_received(time))

    def _wake_space_waiters(self) -> None:
        if not self._space_waiters:
            return
        waiters, self._space_waiters = self._space_waiters, []
        for callback in waiters:
            callback()
