"""Macro-stepping kernel for the frontend-link-delegator pipeline.

Opt-in via ``DORAM_LINK=kernel`` (``--link kernel`` on ``run`` / ``serve``
/ ``perf``), mirroring the ``DORAM_DRAM`` axis.  The legacy
:class:`~repro.core.frontend.DelegatorBackend` /
:class:`~repro.core.delegator.SecureDelegator` /
:class:`~repro.core.frontend.OramFrontend` trio stays the bit-exact
differential oracle; the kernel classes here produce the identical
logical event stream (stats, component traces, leakage-audit inputs,
``events_dispatched`` census) while eliding the per-packet push/pop
round trips of the paper's fixed-rate pipeline.

Why this is compilable at all: D-ORAM's security argument (Section
III-B) makes the secure-link traffic *deterministic* -- one 72 B request
packet every ``t`` cycles after the previous response, one 72 B response
per request, constant SD decrypt/verify and CPU decrypt/check delays.
Every hop of a pacer period is therefore a constant-latency edge whose
successor event is known at schedule time, which is exactly the shape
:attr:`Engine.batch_inline_ok` fusion consumes.  Under fusion the whole
period advances as one call chain (the pipeline analogue of the PR 7
DRAM chain loop)::

    _on_response          -- pacer rebases, closed-form next slot
      -> _emit            -- fused across the idle gap (synthesized)
        -> send_down_tail -- down-link delivery fused (synthesized)
          -> stage 0      -- SD intake, trace preamble
            -> hop fusion -- SD process delay fused (synthesized)
              -> OramSequencer.submit -> begin_read
                 (DRAM work runs in the PR 7 KernelChannel chain loop;
                  the stack unwinds here -- completions are pushed)
    ...read phase done -> respond (tail)
      -> stage 1 -> send_up_tail   -- up-link delivery fused
        -> stage 2                 -- CPU decrypt hop fused
          -> _on_response          -- next period

Each fusion site independently re-checks the strictly-next guard
(``engine.peek_time()``), so any concurrent work -- NS-core wakes, the
overlapping ORAM write phase, another tenant's hop -- falls back to an
ordinary push at that site only, preserving the exact unfused schedule.

Multi-period fast-forward: the pacer's
:class:`~repro.sim.periodic.PeriodicStream` computes the next emission
slot in closed form (``rebase`` never materializes intermediate slots,
PR 4), so the quiescent-delegator jump from a response to the next
emission is O(1) in the gap length -- one ``engine.now`` assignment --
no matter how many pacer periods of idle time it crosses.

Fallback rules (per-packet stepping, zero digest drift):

* ``engine.batch_inline_ok`` false (eager periodic oracle mode, or the
  per-dispatch engine trace category enabled): every kernel class defers
  to the *literal* legacy code path, including allocating the legacy
  ``_DelegatorOp``, so the dispatch schedule matches (time, seq) for
  (time, seq) -- only the engine-trace ``fn`` qualnames show the kernel
  class names.
* Fault-armed runs (``--faults``): the system builder never selects the
  kernel classes at all -- recovery frames, NAK retransmission and
  armed-empty plans run the legacy per-packet machinery, whose schedule
  the recovery protocol's leakage audit is pinned against.
* A fault site armed directly on a link: ``SerialLink.send_tail``
  already reroutes to the faulty per-packet path.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.core.config import PACKET_BYTES
from repro.core.delegator import SecureDelegator
from repro.core.frontend import DelegatorBackend, OramFrontend, _DelegatorOp


class _KernelDelegatorOp:
    """Flyweight round-trip op: one instance per backend, reset per use.

    The frontend is stop-and-wait (at most one request in flight per
    backend), so the per-access ``_DelegatorOp`` allocation of the
    legacy path can be interned into a single reusable object.  Stage
    dispatch is table-driven: ``__call__`` indexes :data:`_STAGES` with
    the stage counter instead of re-testing it.

    Stage 0: request packet at the SD -> delegator intake.
    Stage 1: read phase done -> response packet up the link (tail, so
    the delivery may fuse).
    Stage 2: response at the CPU -> ``on_response`` after the CPU-side
    decrypt/check delay, fused when strictly next.
    """

    __slots__ = ("backend", "block_id", "on_response", "stage")

    def __init__(self, backend: "KernelDelegatorBackend") -> None:
        self.backend = backend
        self.block_id: Optional[int] = None
        self.on_response: Optional[Callable[[int], None]] = None
        self.stage = 0

    def _stage0(self, time: int) -> None:
        backend = self.backend
        self.stage = 1
        backend.delegator.receive_request(
            self.block_id, self, backend.controller
        )

    def _stage1(self, time: int) -> None:
        # SD -> CPU response packet.  The sequencer's respond call is in
        # tail position (begin_write already issued), so the delivery
        # may run inline.
        self.stage = 2
        self.backend.secure_bob.send_up_tail(PACKET_BYTES, self)

    def _stage2(self, time: int) -> None:
        backend = self.backend
        engine = backend.engine
        when = time + backend.cpu_process_ticks
        if engine.batch_inline_ok and not engine._stopped:
            until = engine._run_until
            nxt = engine.peek_time()
            if (nxt is None or nxt > when) and (
                until is None or when <= until
            ):
                # The decrypt/check hop is the strictly-next event and
                # we are in tail position (invoked from a link delivery
                # that scheduled nothing after us): run it here as one
                # synthesized occurrence.
                engine._synthesized += 1
                engine.now = when
                self.on_response(when)
                return
        engine.call_at(when, self.on_response, when)

    _STAGES = (_stage0, _stage1, _stage2)

    def __call__(self, time: int) -> None:
        self._STAGES[self.stage](self, time)


class KernelDelegatorBackend(DelegatorBackend):
    """:class:`DelegatorBackend` with the flyweight op + tail-fused send."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._op = _KernelDelegatorOp(self)

    def submit(
        self, block_id: Optional[int], on_response: Callable[[int], None]
    ) -> None:
        if not self.engine.batch_inline_ok:
            # Oracle mode: byte-identical legacy path (same allocation,
            # same engine-trace labels).
            self.secure_bob.send_down(
                PACKET_BYTES, _DelegatorOp(self, block_id, on_response)
            )
            return
        op = self._op
        op.block_id = block_id
        op.on_response = on_response
        op.stage = 0
        # The caller (OramFrontend._emit) is in tail position, so the
        # down-link delivery may fuse.
        self.secure_bob.send_down_tail(PACKET_BYTES, op)


class KernelSecureDelegator(SecureDelegator):
    """:class:`SecureDelegator` with a fused/flattened intake hop.

    The decrypt+authenticate+position-map delay between packet arrival
    and sequencer submission is a constant (``process_ticks``), so the
    per-request closure of the legacy path is replaced by (a) inline
    fusion when the hop is the engine's strictly-next event, else (b) a
    parallel-deque FIFO drained by one prebound callback -- correct
    because a constant delay over monotonic ``engine.now`` preserves
    FIFO order, and a fused hop can never overtake a queued one (the
    queued hop's event time bounds the strictly-next guard).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Parallel arrays for hops waiting out process_ticks (several
        # can be in flight when tenants share one SD).
        self._hop_blocks: Deque[Optional[int]] = deque()
        self._hop_responds: Deque[Callable[[int], None]] = deque()
        self._hop_controllers: Deque[object] = deque()
        #: Lazily bound ``requests`` counter add (bound on first
        #: request, keeping the StatSet identical to legacy for a run
        #: that never receives one).
        self._requests_add: Optional[Callable[[], None]] = None

    def receive_request(
        self,
        block_id: Optional[int],
        respond: Callable[[int], None],
        controller=None,
    ) -> None:
        if self.sequencer is None:
            raise RuntimeError("delegator not wired to a controller")
        add = self._requests_add
        if add is None:
            add = self._requests_add = self.stats.counter("requests").add
        add()
        if self._tracer.enabled:
            self._tracer.instant(
                "sd", "request", self.name, self.engine.now,
                {
                    "real": int(block_id is not None),
                    "queued": int(self.sequencer.busy),
                },
            )
        engine = self.engine
        if not engine.batch_inline_ok:
            # Oracle mode: the legacy per-request closure, so the
            # scheduled event is label-identical under engine tracing.
            engine.after(
                self.process_ticks,
                lambda: self.sequencer.submit(block_id, respond, controller),
            )
            return
        when = engine.now + self.process_ticks
        if not engine._stopped and not self._hop_blocks:
            until = engine._run_until
            nxt = engine.peek_time()
            if (nxt is None or nxt > when) and (
                until is None or when <= until
            ):
                # Our caller (op stage 0, itself a link delivery) is in
                # tail position; the hop is strictly next: run it here.
                engine._synthesized += 1
                engine.now = when
                self.sequencer.submit(block_id, respond, controller)
                return
        self._hop_blocks.append(block_id)
        self._hop_responds.append(respond)
        self._hop_controllers.append(controller)
        engine.after(self.process_ticks, self._drain_hop)

    def _drain_hop(self) -> None:
        self.sequencer.submit(
            self._hop_blocks.popleft(),
            self._hop_responds.popleft(),
            self._hop_controllers.popleft(),
        )


class KernelOramFrontend(OramFrontend):
    """:class:`OramFrontend` with the response->next-emit gap fused.

    ``_on_response`` is the top of every pacer period: after the
    response bookkeeping the pacer computes the next emission slot in
    closed form and, when that slot is the engine's strictly-next event,
    the emit runs inline -- jumping ``engine.now`` across the entire
    idle gap in one synthesized occurrence instead of a push/pop.
    """

    def _on_response(self, time: int) -> None:
        self._inflight = False
        issued_at = self._resp_issued_at
        on_complete = self._resp_on_complete
        self._resp_on_complete = None
        self._response_record(time - issued_at)
        tracer = self._tracer
        if tracer.enabled:
            tracer.instant(
                "oram", "response", self.name, time,
                {"lat": time - issued_at, "real": int(self._resp_real)},
            )
        if on_complete is not None and not self._resp_is_write:
            on_complete(time)
        emit_at = self.pacer.response_received(time)
        engine = self.engine
        if (
            engine.batch_inline_ok
            and not engine._stopped
            and not self._emit_scheduled
        ):
            # Guards evaluated *after* on_complete ran: a core wake it
            # scheduled (or any time it advanced) is visible here.
            if emit_at < engine.now:
                emit_at = engine.now
            until = engine._run_until
            nxt = engine.peek_time()
            if (nxt is None or nxt > emit_at) and (
                until is None or emit_at <= until
            ):
                engine._synthesized += 1
                engine.now = emit_at
                self._emit()
                return
        self._schedule_emit(emit_at)


def link_classes(engine):
    """Frontend/backend/delegator classes for ``engine.link_backend``.

    Fault-armed systems must not call this -- they wire the legacy
    recovery machinery directly (see the module docstring's fallback
    rules).
    """
    if engine.link_backend == "kernel":
        return KernelOramFrontend, KernelDelegatorBackend, KernelSecureDelegator
    return OramFrontend, DelegatorBackend, SecureDelegator
