"""Secure BOB packet formats (Section III-B, Fig. 6).

Every CPU <-> SD packet is exactly 72 bytes: a 64-bit header holding the
access type (1 bit) and memory address (63 bits), followed by a 512-bit
data field.  Reads carry dummy data so a read is indistinguishable from a
write on the wire; responses to writes carry dummy data likewise.  The
split-tree optimization additionally uses *short* read packets (header
only, no data field) whose type is public by design (Section III-C).

The functional encode/decode here round-trips through
:class:`repro.crypto.otp.OtpEngine` in the tests; the timing models only
charge the wire sizes (``PACKET_BYTES`` / ``SHORT_PACKET_BYTES``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.config import PACKET_BYTES, SHORT_PACKET_BYTES

_DATA_BYTES = 64
_ADDR_MASK = (1 << 63) - 1


class PacketType(enum.Enum):
    READ = 0
    WRITE = 1


@dataclass(frozen=True)
class SecurePacket:
    """One fixed-format packet (request or response)."""

    ptype: PacketType
    address: int
    data: bytes = bytes(_DATA_BYTES)

    def __post_init__(self) -> None:
        if not 0 <= self.address <= _ADDR_MASK:
            raise ValueError("address must fit in 63 bits")
        if len(self.data) != _DATA_BYTES:
            raise ValueError(f"data field must be {_DATA_BYTES} bytes")

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to the 72-byte cleartext wire image."""
        header = (self.ptype.value << 63) | self.address
        return header.to_bytes(8, "big") + self.data

    @classmethod
    def decode(cls, raw: bytes) -> "SecurePacket":
        if len(raw) != PACKET_BYTES:
            raise ValueError(f"secure packet must be {PACKET_BYTES} bytes")
        header = int.from_bytes(raw[:8], "big")
        return cls(
            ptype=PacketType(header >> 63),
            address=header & _ADDR_MASK,
            data=raw[8:],
        )

    @classmethod
    def read_request(cls, address: int) -> "SecurePacket":
        """A read with the mandated all-zero dummy data field."""
        return cls(PacketType.READ, address)

    @classmethod
    def write_request(cls, address: int, data: bytes) -> "SecurePacket":
        return cls(PacketType.WRITE, address, data)


@dataclass(frozen=True)
class ShortReadPacket:
    """Split-tree block fetch: header only, sent in cleartext (III-C)."""

    address: int

    def __post_init__(self) -> None:
        if not 0 <= self.address <= _ADDR_MASK:
            raise ValueError("address must fit in 63 bits")

    def encode(self) -> bytes:
        return self.address.to_bytes(8, "big").rjust(SHORT_PACKET_BYTES, b"\0")

    @classmethod
    def decode(cls, raw: bytes) -> "ShortReadPacket":
        if len(raw) != SHORT_PACKET_BYTES:
            raise ValueError(f"short packet must be {SHORT_PACKET_BYTES} bytes")
        return cls(address=int.from_bytes(raw[-8:], "big"))
