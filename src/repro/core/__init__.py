"""D-ORAM: the paper's primary contribution.

The pieces map one-to-one onto Section III:

* :mod:`~repro.core.packets` -- the 72 B fixed-format secure packet and
  the short split-tree read packet (III-B, III-C);
* :mod:`~repro.core.timing_guard` -- the fixed-rate request pacer
  (``t = 50`` cycles) that closes the timing channel (III-B step 2);
* :mod:`~repro.core.delegator` -- the secure delegator in the BOB unit
  that runs Path ORAM next to the untrusted DIMMs (III-B);
* :mod:`~repro.core.tree_split` -- Path ORAM tree expansion across normal
  channels and Table I's space/message accounting (III-C);
* :mod:`~repro.core.channel_sharing` -- the D-ORAM/c allocation policy
  and the profiled T25mix/T33 threshold rule (III-D);
* :mod:`~repro.core.frontend` -- the on-chip secure engine driving either
  the delegator (D-ORAM) or an on-chip ORAM controller (baseline);
* :mod:`~repro.core.system` / :mod:`~repro.core.schemes` -- whole-system
  builders for every configuration evaluated in Section V.
"""

from repro.core.config import SystemConfig, PACKET_BYTES, SHORT_PACKET_BYTES
from repro.core.packets import SecurePacket, PacketType
from repro.core.timing_guard import RequestPacer
from repro.core.tree_split import split_space_shares, split_extra_messages, TABLE_I
from repro.core.channel_sharing import (
    sharing_targets,
    recommend_c,
    SharingDecision,
)
from repro.core.system import SimResult, build_and_run
from repro.core.schemes import SCHEMES, run_scheme
from repro.core.hardware import DelegatorBudget, size_delegator

__all__ = [
    "SystemConfig",
    "PACKET_BYTES",
    "SHORT_PACKET_BYTES",
    "SecurePacket",
    "PacketType",
    "RequestPacer",
    "split_space_shares",
    "split_extra_messages",
    "TABLE_I",
    "sharing_targets",
    "recommend_c",
    "SharingDecision",
    "SimResult",
    "build_and_run",
    "SCHEMES",
    "run_scheme",
    "DelegatorBudget",
    "size_delegator",
]
