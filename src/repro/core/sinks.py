"""Block sinks: where ORAM path traffic lands.

* :class:`DirectChannelSink` -- the on-chip Path ORAM baseline: block
  accesses enqueue straight into the processor's four parallel channels
  (tagged ``SECURE`` so the bandwidth-preallocation scheduler can fence
  them from NS traffic).
* The D-ORAM delegator's sink lives in :mod:`repro.core.delegator`
  because local sub-channel traffic and remote split-tree messages need
  the delegator's link plumbing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType, TrafficClass
from repro.oram.controller import BlockSink
from repro.oram.layout import BlockPlacement


class DirectChannelSink(BlockSink):
    """Issues ORAM blocks into directly attached DRAM channels."""

    def __init__(self, channels: Dict[Tuple[int, int], Channel],
                 app_id: int) -> None:
        self.channels = channels
        self.app_id = app_id

    def try_issue(
        self,
        placement: BlockPlacement,
        op: OpType,
        on_complete: Callable[[int], None],
    ) -> bool:
        key = (placement.channel, placement.subchannel)
        channel = self.channels[key]
        if not channel.can_accept(op):
            return False
        channel.enqueue(
            MemRequest(
                op, placement.channel, placement.subchannel,
                placement.bank, placement.row, placement.col,
                self.app_id, TrafficClass.SECURE, 0, on_complete,
            )
        )
        return True

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        fired = [False]

        def once() -> None:
            if not fired[0]:
                fired[0] = True
                callback()

        for channel in self.channels.values():
            channel.notify_on_space(once)
