"""Block sinks: where ORAM path traffic lands.

* :class:`DirectChannelSink` -- the on-chip Path ORAM baseline: block
  accesses enqueue straight into the processor's four parallel channels
  (tagged ``SECURE`` so the bandwidth-preallocation scheduler can fence
  them from NS traffic).
* The D-ORAM delegator's sink lives in :mod:`repro.core.delegator`
  because local sub-channel traffic and remote split-tree messages need
  the delegator's link plumbing.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.recovery import GuardedRead
from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType, TrafficClass
from repro.oram.controller import BlockSink
from repro.oram.layout import BlockPlacement


class DirectChannelSink(BlockSink):
    """Issues ORAM blocks into directly attached DRAM channels."""

    def __init__(self, channels: Dict[Tuple[int, int], Channel],
                 app_id: int, faults=None, retry_limit: int = 16) -> None:
        self.channels = channels
        self.app_id = app_id
        #: Fault controller (``repro.faults``); ``None`` keeps the issue
        #: path free of per-request guard objects.
        self.faults = faults
        self.retry_limit = retry_limit

    def try_issue(
        self,
        placement: BlockPlacement,
        op: OpType,
        on_complete: Callable[[int], None],
    ) -> bool:
        key = (placement.channel, placement.subchannel)
        channel = self.channels[key]
        if not channel.can_accept(op):
            return False
        if self.faults is not None and op is OpType.READ:
            # MAC verification on the fetched bucket: a transient flip
            # re-reads the same block before the read phase completes.
            guard = GuardedRead(on_complete, self.faults, self.retry_limit)
            on_complete = guard
        req = MemRequest(
            op, placement.channel, placement.subchannel,
            placement.bank, placement.row, placement.col,
            self.app_id, TrafficClass.SECURE, 0, on_complete,
        )
        if on_complete.__class__ is GuardedRead:
            on_complete.reissue = (
                lambda c=channel, r=req: self._reissue(c, r)
            )
        channel.enqueue(req)
        return True

    def _reissue(self, channel: Channel, req: MemRequest) -> None:
        if channel.can_accept(req.op):
            channel.enqueue(req)
        else:
            channel.notify_on_space(
                lambda c=channel, r=req: self._reissue(c, r)
            )

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        fired = [False]

        def once() -> None:
            if not fired[0]:
                fired[0] = True
                callback()

        for channel in self.channels.values():
            channel.notify_on_space(once)
