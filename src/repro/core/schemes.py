"""Named scheme configurations (every setup Section V evaluates).

Scheme strings accepted by :func:`run_scheme` / the CLI / the benches:

=================  ==========================================================
``1ns``            one NS-App alone, 4 direct channels (Fig. 4 base)
``7ns-4ch``        seven NS-Apps on all 4 channels, no S-App
``7ns-3ch``        seven NS-Apps restricted to channels 1-3
``baseline``       1 S-App (on-chip Path ORAM) + 7 NS-Apps, direct-attached
``securemem``      1 S-App (trusted-memory model) + 7 NS-Apps
``doram``          D-ORAM: delegated ORAM on the secure BOB channel
``doram+K``        D-ORAM with the tree expanded/split by K levels
``doram/C``        D-ORAM with only C NS-Apps allowed on the secure channel
``doram+K/C``      both of the above
=================  ==========================================================
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.system import SimResult, build_and_run

_DORAM_RE = re.compile(r"^doram(?:\+(\d+))?(?:/(\d+))?$")


def _split_overrides(overrides: Dict[str, object]) -> Tuple[
    Dict[str, object], Dict[str, Dict[str, object]]
]:
    """Separate flat ``field=value`` overrides from dotted
    ``component.field=value`` ones (``oram.leaf_level=21``)."""
    flat: Dict[str, object] = {}
    nested: Dict[str, Dict[str, object]] = {}
    for key, value in overrides.items():
        if "." in key:
            head, sub = key.split(".", 1)
            if "." in sub:
                raise ValueError(
                    f"override {key!r} nests more than one level deep"
                )
            nested.setdefault(head, {})[sub] = value
        else:
            flat[key] = value
    return flat, nested


def _apply_nested(config: SystemConfig,
                  nested: Dict[str, Dict[str, object]]) -> SystemConfig:
    """Rebuild nested component dataclasses with dotted overrides.

    ``dataclasses.replace`` re-runs every ``__post_init__`` consistency
    check, so an out-of-range ``oram.leaf_level`` fails here with the
    component's own error message -- the same up-front validation flat
    overrides get.
    """
    updates: Dict[str, object] = {}
    for head, fields in nested.items():
        current = getattr(config, head, None)
        if current is None or not dataclasses.is_dataclass(current):
            raise ValueError(
                f"unknown override component {head!r} "
                f"(dotted overrides reach the nested component configs: "
                f"oram, dram_timing, channel_params, core_params, "
                f"link_params)"
            )
        known = {f.name for f in dataclasses.fields(current)}
        unknown = set(fields) - known
        if unknown:
            raise ValueError(
                f"unknown {head} override field(s) "
                f"{', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
        updates[head] = replace(current, **fields)
    return replace(config, **updates)


def make_config(
    scheme: str,
    benchmark: str = "libq",
    trace_length: int = 8000,
    **overrides,
) -> SystemConfig:
    """Build the :class:`SystemConfig` for a named scheme.

    Overrides are either flat :class:`SystemConfig` fields
    (``t_cycles=60``) or dotted component fields
    (``**{"oram.leaf_level": 21}``) that rebuild the nested component
    dataclass -- the form the sweep/explore grids use, since dotted
    keys survive a JSON round trip as plain scalars.
    """
    scheme = scheme.lower().strip()
    flat, nested = _split_overrides(overrides)
    common = dict(benchmark=benchmark, trace_length=trace_length)
    common.update(flat)
    config = _make_flat_config(scheme, common)
    if nested:
        config = _apply_nested(config, nested)
    return config


def _make_flat_config(scheme: str, common: Dict[str, object]) -> SystemConfig:

    if scheme == "1ns":
        return SystemConfig(
            arch="direct", protection="none", oram_placement="onchip",
            has_s_app=False, num_ns_apps=1, **common,
        )
    if scheme == "7ns-4ch":
        return SystemConfig(
            arch="direct", protection="none", oram_placement="onchip",
            has_s_app=False, num_ns_apps=7, **common,
        )
    if scheme == "7ns-3ch":
        return SystemConfig(
            arch="direct", protection="none", oram_placement="onchip",
            has_s_app=False, num_ns_apps=7, ns_channels=(1, 2, 3), **common,
        )
    if scheme in ("baseline", "1s7ns", "pathoram"):
        return SystemConfig(
            arch="direct", protection="path", oram_placement="onchip",
            **common,
        )
    if scheme == "securemem":
        return SystemConfig(
            arch="direct", protection="securemem", oram_placement="onchip",
            **common,
        )
    if scheme == "udic":
        # Section III-F: delegate to a bridge chip on the DIMM of a
        # parallel-link channel instead of a BOB unit.  The engine then
        # commands only that one channel's devices (no 4x sub-channel
        # fan-out) but the "link" is the parallel bus itself (~2 ns).
        from repro.bob.link import LinkParams
        from repro.sim.engine import ns as _ns

        return SystemConfig(
            arch="bob", protection="path", oram_placement="delegated",
            secure_subchannels=1,
            link_params=LinkParams(latency=_ns(2.0)),
            **common,
        )
    match = _DORAM_RE.match(scheme)
    if match:
        split_k = int(match.group(1)) if match.group(1) else 0
        c_limit = int(match.group(2)) if match.group(2) else None
        return SystemConfig(
            arch="bob", protection="path", oram_placement="delegated",
            split_k=split_k, c_limit=c_limit, **common,
        )
    raise ValueError(f"unknown scheme {scheme!r}")


#: Canonical scheme list for discovery (parameterized forms are accepted
#: too, e.g. ``doram+2/3``).
SCHEMES = (
    "1ns",
    "7ns-4ch",
    "7ns-3ch",
    "baseline",
    "securemem",
    "doram",
    "doram+1",
    "doram/4",
    "doram+1/4",
    "udic",
)


def run_scheme(
    scheme: str,
    benchmark: str = "libq",
    trace_length: int = 8000,
    max_events: Optional[int] = None,
    tracer=None,
    snapshot_interval_ns: Optional[float] = None,
    faults=None,
    **overrides,
) -> SimResult:
    """Build and simulate one named scheme.

    ``tracer`` / ``snapshot_interval_ns`` / ``faults`` are forwarded to
    :func:`build_and_run`; all other keyword ``overrides`` go to
    :class:`SystemConfig`.
    """
    config = make_config(scheme, benchmark, trace_length, **overrides)
    return build_and_run(config, max_events=max_events, tracer=tracer,
                         snapshot_interval_ns=snapshot_interval_ns,
                         faults=faults)
