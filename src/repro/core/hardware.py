"""Secure delegator hardware budget (Section III-E).

The paper argues the SD is cheap: citing the Ascend implementation [31],
the complete Path ORAM component (stash, position map SRAM, AES units,
control) occupies under 1 mm^2 at 32 nm -- "modest for an on-board BOB
unit".  This module makes that budget explicit and checkable: it sizes
each SD structure from the ORAM configuration and flags configurations
whose on-delegator state outgrows the paper's envelope (the practical
limit that motivates both the tree-top cache depth and, for huge trees,
the recursive position map of :mod:`repro.oram.recursive`).

Densities are rough 32 nm figures (SRAM ~0.6 mm^2 per MB including
overhead; one AES-128 round-pipelined core ~0.02 mm^2), adequate for a
sanity budget, not for circuit design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.oram.config import OramConfig

#: mm^2 per MB of SRAM at 32 nm (array + periphery, conservative).
SRAM_MM2_PER_MB = 0.6
#: mm^2 per pipelined AES-128 core at 32 nm.
AES_CORE_MM2 = 0.02
#: Fixed control/queueing overhead, mm^2.
CONTROL_MM2 = 0.05
#: The paper's envelope (Section III-E, citing [31]).
PAPER_BUDGET_MM2 = 1.0


@dataclass(frozen=True)
class DelegatorBudget:
    """Sized SD structures for one ORAM configuration."""

    position_map_bytes: int
    stash_bytes: int
    treetop_bytes: int
    aes_cores: int

    @property
    def sram_bytes(self) -> int:
        return self.position_map_bytes + self.stash_bytes + self.treetop_bytes

    @property
    def area_mm2(self) -> float:
        sram = self.sram_bytes / 2**20 * SRAM_MM2_PER_MB
        return sram + self.aes_cores * AES_CORE_MM2 + CONTROL_MM2

    @property
    def fits_paper_budget(self) -> bool:
        return self.area_mm2 <= PAPER_BUDGET_MM2


def size_delegator(
    config: OramConfig,
    stash_entries: int = 200,
    aes_cores: int = 2,
    recursive_position_map: bool = False,
) -> DelegatorBudget:
    """Size the SD's structures for ``config``.

    ``recursive_position_map`` models storing the map in the tree
    (recursion): the SD then keeps only the top-level map (~4 KB)
    instead of one entry per user block.
    """
    if stash_entries < 1 or aes_cores < 1:
        raise ValueError("stash_entries and aes_cores must be positive")
    entry_bytes = max(1, (config.leaf_level + 7) // 8)
    if recursive_position_map:
        posmap = 4096
    else:
        posmap = config.num_user_blocks * entry_bytes
    stash = stash_entries * (config.block_bytes + 16)  # payload + tags
    treetop_buckets = (1 << config.treetop_levels) - 1
    treetop = treetop_buckets * config.bucket_size * (config.block_bytes + 16)
    return DelegatorBudget(
        position_map_bytes=posmap,
        stash_bytes=stash,
        treetop_bytes=treetop,
        aes_cores=aes_cores,
    )
