"""Whole-system assembly and execution.

``build_and_run(SystemConfig)`` wires up the full machine -- cores, NS-App
routers, DRAM channels (direct-attached or BOB), and whichever protection
engine the scheme calls for -- runs it until every NS-App core drains its
trace, and returns a :class:`SimResult` with the measurements every figure
of the paper is computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bob.channel import BobChannel
from repro.core.channel_sharing import sharing_targets
from repro.core.config import SystemConfig
from repro.core.delegator import OramSequencer, SecureDelegator
from repro.core.frontend import DelegatorBackend, OnChipBackend, OramFrontend
from repro.core.recovery import (
    BobChannelSink,
    FailoverBackend,
    SecureLinkSession,
)
from repro.core.sinks import DirectChannelSink
from repro.cpu.core import Core, MemoryPort
from repro.dram.address_mapping import (
    ChannelInterleaver,
    DeviceGeometry,
    decode_line,
)
from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType, TrafficClass
from repro.dram.kernel import channel_class
from repro.dram.scheduler import SharePolicy, SingleClassPolicy
from repro.obs.snapshot import StatsSampler
from repro.oram.controller import OramController
from repro.oram.layout import OramLayout
from repro.securemem import SecureMemPort
from repro.sim.engine import Engine, TICKS_PER_NS, ns
from repro.sim.stats import LatencyStat, StatSet
from repro.trace.benchmarks import benchmark_trace

#: Line-space slice reserved per application (keeps app address spaces
#: disjoint inside every channel).
APP_SLICE_LINES = 1 << 19


class _RouterDone:
    """Per-request completion for the NS-App routers.

    One ``__slots__`` object instead of a closure per issued request; the
    latency-stat update is inlined (latency is non-negative since
    completion never precedes issue).
    """

    __slots__ = ("stat", "issued", "oc")

    def __init__(self, stat: LatencyStat, issued: int, oc) -> None:
        self.stat = stat
        self.issued = issued
        self.oc = oc

    def __call__(self, time: int) -> None:
        lat = time - self.issued
        stat = self.stat
        stat.count += 1
        stat.total += lat
        bound = stat.min
        if bound is None or lat < bound:
            stat.min = lat
        bound = stat.max
        if bound is None or lat > bound:
            stat.max = lat
        oc = self.oc
        if oc is not None:
            oc(time)


class DirectRouter(MemoryPort):
    """NS-App port for the direct-attached architecture."""

    def __init__(
        self,
        engine: Engine,
        channels: Dict[Tuple[int, int], Channel],
        targets: List[Tuple[int, int]],
        app_id: int,
        app_slot: int,
        geometry: DeviceGeometry = DeviceGeometry(),
        hold_cap: int = 16,
    ) -> None:
        self.engine = engine
        self.channels = channels
        self.app_id = app_id
        self.interleaver = ChannelInterleaver(
            targets, geometry, app_base_line=app_slot * APP_SLICE_LINES
        )
        self.hold_cap = hold_cap
        self.stats = StatSet(f"router{app_id}")
        self._held: List[MemRequest] = []
        self._space_waiters: List[Callable[[], None]] = []
        self._lat_read = self.stats.latency("read_latency")
        self._lat_write = self.stats.latency("write_latency")

    def can_accept(self, op: OpType) -> bool:
        return len(self._held) < self.hold_cap

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        self._space_waiters.append(callback)

    def issue(self, op, line_addr, app_id, on_complete) -> None:
        channel, subchannel, bank, row, col = \
            self.interleaver.map_line_tuple(line_addr)
        done = _RouterDone(
            self._lat_write if op is OpType.WRITE else self._lat_read,
            self.engine.now, on_complete,
        )
        req = MemRequest(
            op, channel, subchannel, bank, row, col,
            self.app_id, TrafficClass.NORMAL, 0, done,
        )
        self._send_or_hold(req)

    def _send_or_hold(self, req: MemRequest) -> None:
        channel = self.channels[(req.channel, req.subchannel)]
        if channel.can_accept(req.op):
            channel.enqueue(req)
            self._wake()
        else:
            self._held.append(req)
            channel.notify_on_space(self._drain)

    def _drain(self) -> None:
        held, self._held = self._held, []
        for req in held:
            self._send_or_hold(req)

    def _wake(self) -> None:
        if self._space_waiters and len(self._held) < self.hold_cap:
            waiters, self._space_waiters = self._space_waiters, []
            for callback in waiters:
                callback()


class BobRouter(MemoryPort):
    """NS-App port for the BOB architecture.

    Lines stripe across the app's allowed channels; within the secure
    channel they further stripe across its four sub-channels.
    """

    def __init__(
        self,
        engine: Engine,
        bobs: Dict[int, BobChannel],
        allowed_channels: Tuple[int, ...],
        app_id: int,
        app_slot: int,
        geometry: DeviceGeometry = DeviceGeometry(),
        hold_cap: int = 16,
    ) -> None:
        self.engine = engine
        self.bobs = bobs
        self.allowed = tuple(allowed_channels)
        self.app_id = app_id
        self.base_line = app_slot * APP_SLICE_LINES
        self.geometry = geometry
        self.hold_cap = hold_cap
        self.stats = StatSet(f"router{app_id}")
        self._held: List[Tuple] = []
        self._space_waiters: List[Callable[[], None]] = []
        self._lat_read = self.stats.latency("read_latency")
        self._lat_write = self.stats.latency("write_latency")

    def can_accept(self, op: OpType) -> bool:
        return len(self._held) < self.hold_cap

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        self._space_waiters.append(callback)

    def _map(self, line_addr: int) -> Tuple[int, int, int, int, int]:
        channel = self.allowed[line_addr % len(self.allowed)]
        stream = line_addr // len(self.allowed)
        nsub = len(self.bobs[channel].subchannels)
        subchannel = stream % nsub
        local = self.base_line + stream // nsub
        bank, row, col = decode_line(local, self.geometry)
        return channel, subchannel, bank, row, col

    def issue(self, op, line_addr, app_id, on_complete) -> None:
        channel, subchannel, bank, row, col = self._map(line_addr)
        done = _RouterDone(
            self._lat_write if op is OpType.WRITE else self._lat_read,
            self.engine.now, on_complete,
        )
        self._send_or_hold((op, channel, subchannel, bank, row, col, done))

    def _send_or_hold(self, item: Tuple) -> None:
        op, channel, subchannel, bank, row, col, done = item
        bob = self.bobs[channel]
        if bob.can_accept(op):
            bob.submit(op, subchannel, bank, row, col, self.app_id,
                       TrafficClass.NORMAL, done)
            self._wake()
        else:
            self._held.append(item)
            bob.notify_on_space(self._drain)

    def _drain(self) -> None:
        held, self._held = self._held, []
        for item in held:
            self._send_or_hold(item)

    def _wake(self) -> None:
        if self._space_waiters and len(self._held) < self.hold_cap:
            waiters, self._space_waiters = self._space_waiters, []
            for callback in waiters:
                callback()


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class SimResult:
    """Everything measured in one run."""

    config: SystemConfig
    #: Per-NS-app finish time in ticks.
    ns_finish: Dict[int, int]
    #: NS-App end-to-end memory latencies (merged over apps).
    ns_read_latency: LatencyStat
    ns_write_latency: LatencyStat
    #: Per-channel summary rows.
    channels: Dict[str, Dict[str, float]]
    #: S-App / ORAM engine summary (empty when no S-App).
    s_app: Dict[str, float] = field(default_factory=dict)
    events: int = 0
    end_time: int = 0
    #: Periodic StatSet snapshots (rows of ``{"ts": tick, track: {...}}``),
    #: populated when ``build_and_run`` was given a snapshot interval.
    snapshots: List[Dict] = field(default_factory=list)
    #: Full :meth:`StatSet.as_dict` export per protection-engine component
    #: (frontends, controllers, delegator), keyed by component name.
    component_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Events the engine actually dispatched (``events`` is the logical
    #: census including synthesized periodic occurrences; this one drops
    #: under lazy periodic mode).  Excluded from equality and from
    #: :meth:`to_json_dict` so serialized results stay identical across
    #: periodic modes.
    raw_events: int = field(default=0, compare=False)
    #: Fault-injection and recovery counters (``FaultController.summary``)
    #: when the run had a fault plan attached; ``None`` otherwise.
    #: Excluded from equality and serialization so armed-but-empty runs
    #: stay byte-identical to plain runs in the sweep store.
    fault_summary: Optional[Dict[str, Dict[str, float]]] = field(
        default=None, compare=False
    )

    # -- headline metrics -------------------------------------------------
    def ns_mean_time(self) -> float:
        """Average NS-App execution time in ticks (the Figs. 9-11 metric)."""
        if not self.ns_finish:
            raise ValueError("run had no NS-Apps")
        return sum(self.ns_finish.values()) / len(self.ns_finish)

    def ns_max_time(self) -> float:
        return max(self.ns_finish.values())

    def ns_mean_ns(self) -> float:
        return self.ns_mean_time() / TICKS_PER_NS

    def read_latency_ns(self) -> float:
        return self.ns_read_latency.mean / TICKS_PER_NS

    def write_latency_ns(self) -> float:
        return self.ns_write_latency.mean / TICKS_PER_NS

    # -- (de)serialization (sweep result store) -------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """Complete JSON-safe form of the run.

        Every value is an exact integer, a string, or a float computed
        deterministically by the simulator, so serializing the same run
        twice -- in any process, any worker -- produces byte-identical
        canonical JSON.  The sweep store and its equivalence tests rely
        on that.
        """
        return {
            "config": self.config.to_json_dict(),
            "ns_finish": {str(app): t for app, t in self.ns_finish.items()},
            "ns_read_latency": self.ns_read_latency.as_dict(),
            "ns_write_latency": self.ns_write_latency.as_dict(),
            "channels": self.channels,
            "s_app": self.s_app,
            "events": self.events,
            "end_time": self.end_time,
            "snapshots": self.snapshots,
            "component_stats": self.component_stats,
        }

    @classmethod
    def from_json_dict(cls, state: Dict[str, object]) -> "SimResult":
        return cls(
            config=SystemConfig.from_json_dict(state["config"]),
            ns_finish={int(app): t
                       for app, t in state["ns_finish"].items()},
            ns_read_latency=LatencyStat.from_dict(state["ns_read_latency"]),
            ns_write_latency=LatencyStat.from_dict(state["ns_write_latency"]),
            channels=state["channels"],
            s_app=state["s_app"],
            events=state["events"],
            end_time=state["end_time"],
            snapshots=state["snapshots"],
            component_stats=state["component_stats"],
        )


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------


def build_bob_fabric(
    engine: Engine,
    *,
    num_channels: int,
    secure_channels: Tuple[int, ...],
    secure_subchannels: int,
    normal_subchannels: int,
    dram_timing,
    channel_params,
    link_params,
    secure_policy: Optional[SharePolicy] = None,
    tracer=None,
) -> Tuple[Dict[Tuple[int, int], Channel], Dict[int, BobChannel]]:
    """Construct the BOB channel fabric: sub-channels plus serial links.

    Shared by :func:`build_and_run` (one secure channel, the paper's
    machine) and the scenario service layer (possibly several secure
    channels hosting one delegator each).  Channels are created in
    ``(channel, subchannel)`` order -- construction order is part of the
    determinism contract, since engine sequence numbers follow it.

    ``secure_policy`` is applied to every sub-channel of a secure
    channel (the bandwidth-preallocation scheduler); ``None`` gives all
    sub-channels the single-class policy.
    """
    channels: Dict[Tuple[int, int], Channel] = {}
    bobs: Dict[int, BobChannel] = {}
    secure_set = frozenset(secure_channels)
    for ch in range(num_channels):
        is_secure = ch in secure_set
        nsub = secure_subchannels if is_secure else normal_subchannels
        subs = []
        for i in range(nsub):
            policy = (
                secure_policy if (is_secure and secure_policy is not None)
                else SingleClassPolicy()
            )
            sub = channel_class(engine)(
                engine, f"ch{ch}.{i}", dram_timing, channel_params,
                share_policy=policy, tracer=tracer,
            )
            subs.append(sub)
            channels[(ch, i)] = sub
        bobs[ch] = BobChannel(engine, ch, subs, link_params, tracer=tracer)
    return channels, bobs


def _ns_allowed_channels(config: SystemConfig, app: int) -> Tuple[int, ...]:
    """Channel set for NS-App ``app`` under the scheme's policies."""
    base = config.ns_channels or tuple(range(config.num_channels))
    if config.c_limit is None or config.secure_channel not in base:
        return tuple(base)
    allowed = sharing_targets(
        config.num_ns_apps, config.c_limit, base, config.secure_channel
    )
    return allowed[app]


def build_and_run(config: SystemConfig,
                  max_events: Optional[int] = None,
                  tracer=None,
                  snapshot_interval_ns: Optional[float] = None,
                  faults=None) -> SimResult:
    """Instantiate the configured system, simulate, and measure.

    ``tracer`` (a :class:`repro.obs.Tracer`) turns on event tracing in
    every instrumented component; ``snapshot_interval_ns`` additionally
    samples per-channel occupancy/utilization (and the ORAM frontend
    backlog) on that period, into both the tracer (counter events) and
    :attr:`SimResult.snapshots`.

    ``faults`` (a :class:`repro.faults.FaultController`, single-run)
    arms the fault-injection sites and the secure-link recovery
    protocol.  A controller whose plan is empty leaves the run
    bit-identical to ``faults=None`` (same trace digest, same
    serialized result) -- the recovery framing is schedule-neutral.
    """
    engine = Engine(tracer=tracer)
    if faults is not None:
        faults.bind(engine, tracer)
    geometry = DeviceGeometry()
    secure_share = config.secure_share_policy()

    channels: Dict[Tuple[int, int], Channel] = {}
    bobs: Dict[int, BobChannel] = {}
    oram_in_dram = config.has_s_app and config.protection == "path"

    if config.arch == "direct":
        for ch in range(config.num_channels):
            # Secure and normal traffic share every channel in the
            # on-chip baseline, so each gets the preallocation policy.
            policy = secure_share if oram_in_dram else SingleClassPolicy()
            channels[(ch, 0)] = channel_class(engine)(
                engine, f"ch{ch}", config.dram_timing, config.channel_params,
                share_policy=policy, tracer=tracer,
            )
    else:
        channels, bobs = build_bob_fabric(
            engine,
            num_channels=config.num_channels,
            secure_channels=(config.secure_channel,),
            secure_subchannels=config.secure_subchannels,
            normal_subchannels=config.normal_subchannels,
            dram_timing=config.dram_timing,
            channel_params=config.channel_params,
            link_params=config.link_params,
            secure_policy=secure_share if oram_in_dram else None,
            tracer=tracer,
        )

    if faults is not None:
        for key in sorted(channels):
            channel = channels[key]
            site = faults.dram_site(channel.name)
            if site is not None:
                channel.arm_faults(site)
            if faults.capture_commands:
                faults.command_logs[channel.name] = \
                    channel.start_command_log()
        for ch in sorted(bobs):
            bob = bobs[ch]
            for link in (bob.down, bob.up):
                site = faults.link_site(link.name)
                if site is not None:
                    link.arm_faults(site)

    # -- NS-App ports -------------------------------------------------------
    ns_ports: Dict[int, MemoryPort] = {}
    for app in range(config.num_ns_apps):
        allowed = _ns_allowed_channels(config, app)
        if config.arch == "direct":
            targets = [(ch, 0) for ch in allowed]
            ns_ports[app] = DirectRouter(
                engine, channels, targets, app, app_slot=app,
                geometry=geometry,
            )
        else:
            ns_ports[app] = BobRouter(
                engine, bobs, allowed, app, app_slot=app, geometry=geometry,
            )

    # -- S-App protection engines ----------------------------------------
    s_ports: List[MemoryPort] = []
    frontends: List[OramFrontend] = []
    controllers: List[OramController] = []
    #: Host-side engines built on demand by secure-link failover; empty
    #: unless a fault plan actually killed the delegator.
    fallback_controllers: List[OramController] = []
    delegator: Optional[SecureDelegator] = None
    s_app_id = config.num_ns_apps  # first S-App id

    # Link-pipeline implementation (DORAM_LINK).  Fault-armed runs always
    # take the legacy per-packet classes: recovery frames, NAKs and
    # armed-empty plans are pinned against the per-packet schedule
    # (link_kernel module docstring, fallback rules).
    if engine.link_backend == "kernel" and faults is None:
        from repro.core.link_kernel import (
            KernelDelegatorBackend,
            KernelOramFrontend,
            KernelSecureDelegator,
        )

        frontend_cls: type = KernelOramFrontend
        backend_cls: type = KernelDelegatorBackend
        delegator_cls: type = KernelSecureDelegator
    else:
        frontend_cls = OramFrontend
        backend_cls = DelegatorBackend
        delegator_cls = SecureDelegator

    if config.has_s_app:
        if config.protection == "path":
            ocfg = config.effective_oram()
            if config.oram_placement == "onchip":
                layout = OramLayout(
                    ocfg,
                    home_targets=[(ch, 0) for ch in range(config.num_channels)],
                    geometry=geometry,
                )
                if faults is not None:
                    sink = DirectChannelSink(
                        channels, app_id=s_app_id, faults=faults,
                        retry_limit=faults.recovery.block_read_retries,
                    )
                else:
                    sink = DirectChannelSink(channels, app_id=s_app_id)
                controller = OramController(engine, ocfg, layout, sink,
                                            seed=config.seed,
                                            fork_path=config.fork_path,
                                            tracer=tracer)
                controllers.append(controller)
                backend = OnChipBackend(engine, controller)
                frontend = frontend_cls(engine, backend,
                                        t_cycles=config.t_cycles,
                                        tracer=tracer)
                frontend.start()
                frontends.append(frontend)
                s_ports.append(frontend)
            else:
                secure_bob = bobs[config.secure_channel]
                normal_bobs = {
                    ch: bob for ch, bob in bobs.items()
                    if ch != config.secure_channel
                }
                delegator = delegator_cls(
                    engine, secure_bob, normal_bobs,
                    process_ns=config.sd_process_ns, app_id=s_app_id,
                    merge_short_reads=config.merge_short_reads,
                    tracer=tracer,
                )
                remote_targets = [(ch, 0) for ch in sorted(normal_bobs)]
                # Remote footprint per tree (split levels, per channel).
                remote_span = sum(
                    (1 << l) + -(-(1 << l) // max(len(remote_targets), 1))
                    for l in range(ocfg.num_levels - config.split_k,
                                   ocfg.num_levels)
                )
                home_base = 1 << 24
                remote_base = 1 << 24
                for s_index in range(config.num_s_apps):
                    layout = OramLayout(
                        ocfg,
                        home_targets=[
                            (config.secure_channel, i)
                            for i in range(config.secure_subchannels)
                        ],
                        geometry=geometry,
                        base_line=home_base,
                        home_levels=ocfg.num_levels - config.split_k,
                        remote_targets=(
                            remote_targets if config.split_k else ()
                        ),
                        remote_base_line=remote_base,
                    )
                    home_base += layout.home_lines_per_target + (1 << 16)
                    remote_base += remote_span + (1 << 16)
                    ctrl = OramController(
                        engine, ocfg, layout, delegator.sink,
                        seed=config.seed + 31 * s_index,
                        name=f"oram{s_index}",
                        fork_path=config.fork_path,
                        tracer=tracer,
                    )
                    controllers.append(ctrl)
                delegator.sequencer = OramSequencer(controllers[0])
                if faults is not None:
                    delegator.arm_recovery(faults)
                for s_index, ctrl in enumerate(controllers):
                    session = None
                    if faults is not None:
                        # Recovery-protocol endpoint; the fallback (a
                        # host-side Path ORAM over the normal BOB path)
                        # is only built if the watchdog ever fires, so
                        # a fault-free run allocates nothing extra.
                        def _make_fallback(ctrl=ctrl, s_index=s_index):
                            fb_sink = BobChannelSink(
                                bobs, app_id=s_app_id, faults=faults,
                                retry_limit=(
                                    faults.recovery.block_read_retries
                                ),
                            )
                            fb_ctrl = OramController(
                                engine, ctrl.config, ctrl.layout, fb_sink,
                                seed=config.seed + 31 * s_index,
                                name=f"oram{s_index}.fb",
                                fork_path=config.fork_path,
                                tracer=tracer,
                            )
                            fallback_controllers.append(fb_ctrl)
                            return OnChipBackend(engine, fb_ctrl)

                        session = SecureLinkSession(
                            engine, secure_bob, delegator, ctrl,
                            faults.recovery, faults,
                            fallback_factory=_make_fallback,
                            name=f"sdlink{s_index}",
                        )
                        backend = FailoverBackend(session)
                    else:
                        backend = backend_cls(
                            engine, secure_bob, delegator, controller=ctrl
                        )
                    frontend = frontend_cls(
                        engine, backend, t_cycles=config.t_cycles,
                        name=f"oram_fe{s_index}", tracer=tracer,
                    )
                    if session is not None:
                        session.bind_pacer(frontend.pacer)
                    frontend.start()
                    frontends.append(frontend)
                    s_ports.append(frontend)
        elif config.protection == "securemem":
            interleaver = ChannelInterleaver(
                sorted(channels.keys()), geometry,
                app_base_line=s_app_id * APP_SLICE_LINES,
            )
            s_ports.append(SecureMemPort(
                engine, channels, interleaver, app_id=s_app_id,
                seed=config.seed,
            ))
        else:  # "none": the S-App runs unprotected, like an NS-App.
            if config.arch == "direct":
                targets = [(ch, 0) for ch in range(config.num_channels)]
                s_ports.append(DirectRouter(
                    engine, channels, targets, s_app_id,
                    app_slot=s_app_id, geometry=geometry,
                ))
            else:
                s_ports.append(BobRouter(
                    engine, bobs, tuple(range(config.num_channels)),
                    s_app_id, app_slot=s_app_id, geometry=geometry,
                ))

    # -- cores ---------------------------------------------------------------
    unfinished = {"count": config.num_ns_apps}
    cores: List[Core] = []

    def ns_done(_time: int) -> None:
        unfinished["count"] -= 1
        if unfinished["count"] == 0:
            engine.stop()

    for app in range(config.num_ns_apps):
        trace = benchmark_trace(
            config.benchmark, config.trace_length,
            copy_index=app, segment=config.segment,
        )
        core = Core(engine, app, trace, ns_ports[app],
                    params=config.core_params, on_finish=ns_done)
        cores.append(core)
        core.start()

    s_cores: List[Core] = []
    for s_index, s_port in enumerate(s_ports):
        app_id = config.num_ns_apps + s_index
        trace = benchmark_trace(
            config.benchmark, config.trace_length,
            copy_index=app_id, segment=config.segment,
        )
        if config.num_ns_apps == 0 and s_index == 0:
            s_core = Core(engine, app_id, trace, s_port,
                          params=config.core_params,
                          on_finish=lambda _t: engine.stop())
        else:
            s_core = Core(engine, app_id, trace, s_port,
                          params=config.core_params)
        cores.append(s_core)
        s_cores.append(s_core)
        s_core.start()

    if not cores:
        raise ValueError("configuration produced no cores")

    # -- periodic stat snapshots ---------------------------------------------
    sampler: Optional[StatsSampler] = None
    if snapshot_interval_ns is not None:
        sampler = StatsSampler(engine, ns(snapshot_interval_ns),
                               tracer=tracer)
        for key in sorted(channels):
            channel = channels[key]
            sampler.add_source(
                channel.name,
                lambda c=channel: {
                    "queued": float(c.queued),
                    "util": c.utilization(),
                },
            )
        for frontend in frontends:
            sampler.add_source(
                frontend.name,
                lambda f=frontend: {"backlog": float(f.backlog)},
            )
        sampler.start()

    # -- simulate -------------------------------------------------------------
    engine.run(max_events=max_events)
    ns_cores = cores[: config.num_ns_apps]
    if any(not c.finished for c in ns_cores):
        stuck = [c.name for c in ns_cores if not c.finished]
        raise RuntimeError(
            f"simulation drained with unfinished NS cores {stuck} "
            f"at t={engine.now}; this is a model deadlock"
        )

    # -- collect ---------------------------------------------------------------
    ns_read = LatencyStat("ns.read")
    ns_write = LatencyStat("ns.write")
    for app in range(config.num_ns_apps):
        router = ns_ports[app]
        ns_read.merge(router.stats.latency("read_latency"))
        ns_write.merge(router.stats.latency("write_latency"))

    channel_rows: Dict[str, Dict[str, float]] = {}
    for key in sorted(channels):
        channel = channels[key]
        channel_rows[channel.name] = {
            "utilization": channel.utilization(),
            "row_hit_rate": channel.row_hit_rate(),
            "reads": channel.stats.counter("reads_serviced").value,
            "writes": channel.stats.counter("writes_serviced").value,
            "normal_read_ns": channel.stats.latency(
                "normal_read_latency").mean / TICKS_PER_NS,
            "secure_read_ns": channel.stats.latency(
                "secure_read_latency").mean / TICKS_PER_NS,
            "normal_reads": channel.stats.latency(
                "normal_read_latency").count,
            "secure_reads": channel.stats.latency(
                "secure_read_latency").count,
        }

    s_stats: Dict[str, float] = {}
    if frontends:
        response = LatencyStat("s.oram_response")
        real = dummy = 0
        for frontend in frontends:
            response.merge(frontend.stats.latency("oram_response"))
            real += frontend.pacer.stats.counter("real").value
            dummy += frontend.pacer.stats.counter("dummy").value
        s_stats["oram_accesses"] = real + dummy
        s_stats["oram_real_fraction"] = (
            real / (real + dummy) if real + dummy else 0.0
        )
        s_stats["oram_response_ns"] = response.mean / TICKS_PER_NS
    if controllers:
        read_phase = LatencyStat("s.read_phase")
        write_phase = LatencyStat("s.write_phase")
        for controller in controllers:
            read_phase.merge(controller.stats.latency("read_phase"))
            write_phase.merge(controller.stats.latency("write_phase"))
        s_stats["read_phase_ns"] = read_phase.mean / TICKS_PER_NS
        s_stats["write_phase_ns"] = write_phase.mean / TICKS_PER_NS
    if delegator is not None:
        s_stats["remote_short_reads"] = delegator.stats.counter(
            "remote_short_reads").value
        s_stats["remote_writes"] = delegator.stats.counter(
            "remote_writes").value
    component_stats: Dict[str, Dict[str, float]] = {}
    for frontend in frontends:
        component_stats[frontend.name] = frontend.stats.as_dict()
    for controller in controllers:
        component_stats[controller.name] = controller.stats.as_dict()
    for controller in fallback_controllers:
        component_stats[controller.name] = controller.stats.as_dict()
    if delegator is not None:
        component_stats["delegator"] = delegator.stats.as_dict()
    if s_cores:
        s_stats["s_instructions"] = sum(
            core.stats.counter("loads_issued").value
            + core.stats.counter("stores_issued").value
            for core in s_cores
        )

    return SimResult(
        config=config,
        ns_finish={app: core.finish_time for app, core in
                   enumerate(cores[: config.num_ns_apps])},
        ns_read_latency=ns_read,
        ns_write_latency=ns_write,
        channels=channel_rows,
        s_app=s_stats,
        events=engine.events_dispatched,
        end_time=engine.now,
        snapshots=sampler.rows if sampler is not None else [],
        component_stats=component_stats,
        raw_events=engine.raw_events_dispatched,
        fault_summary=faults.summary() if faults is not None else None,
    )
