"""Tree-split accounting (Section III-C, Table I, Fig. 7).

D-ORAM+k grows the Path ORAM tree by ``k`` levels and relocates those last
``k`` levels onto the three normal channels: each relocated node's four
blocks go to channels ``(#i, #1, #2, #3)`` with ``#i = (node mod 3) + 1``.
This module computes, analytically, the two halves of Table I --

* the resulting space distribution across channels, and
* the extra serial-link messages per ORAM access --

and the test suite cross-checks the space numbers against the actual
:class:`~repro.oram.layout.OramLayout` placement arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class SplitMessages:
    """Per-ORAM-access extra messages caused by a k-level split."""

    #: Secure channel: short read packets up, responses down, writes up.
    secure_short_reads: int
    secure_responses: int
    secure_writes: int
    #: Per normal channel: the count m is in [min, max] depending on how
    #: many of the access's relocated nodes rotate onto that channel.
    normal_min: int
    normal_max: int
    normal_expected: float


def split_space_shares(k: int, leaf_level: int = 23,
                       num_normal: int = 3) -> Dict[str, float]:
    """Fraction of tree blocks per channel after expanding by ``k`` levels.

    ``leaf_level`` is the *original* tree's leaf level (23 for the 4 GB
    tree); the expanded tree has ``leaf_level + k`` + 1 levels and the last
    ``k`` levels are relocated.  Returns ``{"secure": f0, "normal": fj}``
    with ``fj`` the per-normal-channel share.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    if num_normal < 1:
        raise ValueError("need at least one normal channel")
    expanded_leaf = leaf_level + k
    total_buckets = (1 << (expanded_leaf + 1)) - 1
    relocated = sum(
        1 << level for level in range(expanded_leaf - k + 1, expanded_leaf + 1)
    )
    secure = (total_buckets - relocated) / total_buckets
    # Each relocated node spreads its Z=4 blocks evenly over the three
    # normal channels on average: 3 fixed (one each) + 1 rotating.
    per_normal = (relocated / total_buckets) / num_normal
    return {"secure": secure, "normal": per_normal}


def split_extra_messages(k: int, bucket_size: int = 4,
                         num_normal: int = 3) -> SplitMessages:
    """Extra messages per ORAM access for a ``k``-level split (Table I).

    One access touches ``k`` relocated nodes = ``bucket_size * k`` blocks.
    Every relocated block costs the secure channel one short read packet
    (SD -> CPU), one response packet (CPU -> SD) and one write packet
    (SD -> CPU).  A normal channel sees one fixed-slot message per node
    plus zero to one rotating-slot messages per node.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    blocks = bucket_size * k
    return SplitMessages(
        secure_short_reads=blocks,
        secure_responses=blocks,
        secure_writes=blocks,
        normal_min=k,
        normal_max=2 * k,
        normal_expected=k * (1.0 + 1.0 / num_normal),
    )


#: The paper's Table I for k = 1, 2, 3 (space distribution column), used
#: by the Table I bench to print paper-vs-model side by side.
TABLE_I = {
    1: {"secure": 0.500, "normal": 0.167},
    2: {"secure": 0.250, "normal": 0.250},
    3: {"secure": 0.125, "normal": 0.292},
}
