"""System configuration (the paper's Table II plus scheme knobs)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.bob.link import LinkParams
from repro.cpu.core import CoreParams
from repro.dram.timing import ChannelParams, DDR3Timing, DDR3_1600, DEFAULT_CHANNEL_PARAMS
from repro.oram.config import OramConfig

#: Fixed secure-packet size: 1 type bit + 63 address bits + 512 data bits
#: (Section III-B / Fig. 6).
PACKET_BYTES = 72

#: Short read packet used by the tree split: data field omitted
#: (Section III-C).
SHORT_PACKET_BYTES = 16


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to instantiate one simulated system.

    Scheme-independent hardware defaults follow Table II; the scheme
    builders in :mod:`repro.core.schemes` override the policy fields.
    """

    # -- workload ---------------------------------------------------------
    benchmark: str = "libq"
    trace_length: int = 8000
    num_ns_apps: int = 7
    has_s_app: bool = True
    #: Number of protected applications; each gets its own ORAM tree on
    #: the secure channel, all delegated to the one SD (Section III-C's
    #: "two S-Apps and two NS-Apps" capacity scenario).  Only the
    #: delegated (D-ORAM) placement supports more than one.
    num_s_apps: int = 1
    #: Trace segment (Fig. 12 profiles on a different segment).
    segment: int = 0

    # -- architecture -------------------------------------------------------
    #: "direct" = 4 parallel channels at the CPU; "bob" = 4 serial-link
    #: channels.  The default instantiates D-ORAM itself (BOB + delegated
    #: Path ORAM); the scheme builders override for the baselines.
    arch: str = "bob"
    num_channels: int = 4
    #: Sub-channels per BOB channel; the secure channel gets 4, normal
    #: channels 1 (Section IV).
    secure_subchannels: int = 4
    normal_subchannels: int = 1
    secure_channel: int = 0

    # -- protection --------------------------------------------------------
    #: "none" | "path" (ORAM) | "securemem" (ObfusMem/InvisiMem-like).
    protection: str = "path"
    #: Where the ORAM engine runs: "onchip" (baseline) or "delegated".
    oram_placement: str = "delegated"
    #: D-ORAM+k: extra tree levels relocated to normal channels.
    split_k: int = 0
    #: D-ORAM/c: NS-Apps allowed to allocate on the secure channel
    #: (None = all of them).
    c_limit: Optional[int] = None
    #: Channels the NS-Apps may use (None = all); 7NS-3ch passes (1,2,3).
    ns_channels: Optional[Tuple[int, ...]] = None
    #: Fixed-rate gap between ORAM requests, CPU cycles (III-B step 2).
    t_cycles: int = 50
    #: Bandwidth preallocation threshold for shared channels ([39]; IV).
    secure_share: float = 0.5
    #: Extra SD processing latency per packet, ns.
    sd_process_ns: float = 5.0
    #: Fork Path read merging [44] in the ORAM engine (ablation knob;
    #: the paper's configurations leave it off).
    fork_path: bool = False
    #: Coalesce split-tree short read packets per channel -- the paper's
    #: footnote-1 future work ("some read packets may be merged").
    merge_short_reads: bool = False

    # -- components ---------------------------------------------------------
    oram: OramConfig = field(default_factory=OramConfig)
    dram_timing: DDR3Timing = field(default_factory=lambda: DDR3_1600)
    channel_params: ChannelParams = field(
        default_factory=lambda: DEFAULT_CHANNEL_PARAMS
    )
    core_params: CoreParams = field(default_factory=CoreParams)
    link_params: LinkParams = field(default_factory=LinkParams)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.arch not in ("direct", "bob"):
            raise ValueError(f"unknown arch {self.arch!r}")
        if self.protection not in ("none", "path", "securemem"):
            raise ValueError(f"unknown protection {self.protection!r}")
        if self.oram_placement not in ("onchip", "delegated"):
            raise ValueError(f"unknown placement {self.oram_placement!r}")
        if self.num_ns_apps < 0:
            raise ValueError("num_ns_apps must be >= 0")
        if self.c_limit is not None and not 0 <= self.c_limit <= self.num_ns_apps:
            raise ValueError("c_limit out of range")
        if self.split_k < 0:
            raise ValueError("split_k must be >= 0")
        if not 0.0 < self.secure_share < 1.0:
            raise ValueError("secure_share must be in (0, 1)")
        if self.arch == "direct" and self.oram_placement == "delegated":
            raise ValueError("delegation requires the BOB architecture")
        if self.split_k > 0 and self.oram_placement != "delegated":
            raise ValueError("tree split is a D-ORAM (delegated) feature")
        if self.num_s_apps < 1:
            raise ValueError("num_s_apps must be >= 1")
        if (self.num_s_apps > 1
                and (self.protection != "path"
                     or self.oram_placement != "delegated")):
            raise ValueError("multiple S-Apps require delegated Path ORAM")

    # -- (de)serialization (sweep result store) -------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """JSON-safe dict of the complete configuration.

        Nested component dataclasses flatten to plain dicts and tuples
        to lists; :meth:`from_json_dict` reverses the mapping exactly.
        The sweep store hashes this dict (canonical JSON) as the run
        key, so *every* field that can change simulation behaviour must
        appear here -- ``dataclasses.asdict`` guarantees that by
        construction.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, state: Dict[str, object]) -> "SystemConfig":
        state = dict(state)
        state["oram"] = OramConfig(**state["oram"])
        state["dram_timing"] = DDR3Timing(**state["dram_timing"])
        state["channel_params"] = ChannelParams(**state["channel_params"])
        state["core_params"] = CoreParams(**state["core_params"])
        state["link_params"] = LinkParams(**state["link_params"])
        if state.get("ns_channels") is not None:
            state["ns_channels"] = tuple(state["ns_channels"])
        return cls(**state)

    # ------------------------------------------------------------------
    def secure_share_policy(self):
        """The bandwidth-preallocation scheduler policy for channels that
        carry both secure and normal traffic ([39]; Section IV).

        Built here so every fabric builder (the trace-replay system and
        the scenario service layer) derives it from the same
        ``secure_share`` knob instead of re-encoding the split.
        """
        from repro.dram.scheduler import SharePolicy
        from repro.dram.commands import TrafficClass

        return SharePolicy({
            TrafficClass.SECURE: self.secure_share,
            TrafficClass.NORMAL: 1.0 - self.secure_share,
        })

    @property
    def effective_s_apps(self) -> int:
        return self.num_s_apps if self.has_s_app else 0

    @property
    def total_cores(self) -> int:
        return self.num_ns_apps + self.effective_s_apps

    def effective_oram(self) -> OramConfig:
        """ORAM geometry after D-ORAM+k expansion (4 -> 4*2^k GB)."""
        if self.split_k == 0:
            return self.oram
        return OramConfig(
            leaf_level=self.oram.leaf_level + self.split_k,
            bucket_size=self.oram.bucket_size,
            block_bytes=self.oram.block_bytes,
            treetop_levels=self.oram.treetop_levels,
            subtree_levels=self.oram.subtree_levels,
            utilization=self.oram.utilization,
        )
