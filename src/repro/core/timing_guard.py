"""Fixed-rate request generation (the timing-channel guard).

Section III-B step (2): the on-chip secure engine emits a new Path ORAM
request exactly ``t`` CPU cycles after receiving the previous response --
a real request if the S-App has one queued, otherwise a dummy.  The
observable request stream on the serial link is therefore a deterministic
function of the response stream and leaks nothing about the application's
demand (Section III-G cites [44], [46]).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import cpu_cycles
from repro.sim.stats import StatSet


class RequestPacer:
    """Tracks when the next ORAM request may be emitted."""

    def __init__(self, t_cycles: int = 50, name: str = "pacer") -> None:
        if t_cycles < 0:
            raise ValueError("t_cycles must be >= 0")
        self.t_ticks = cpu_cycles(t_cycles)
        self.stats = StatSet(name)
        self._next_allowed = 0
        self._last_response: Optional[int] = None

    @property
    def next_allowed(self) -> int:
        """Earliest tick the next request may leave the secure engine."""
        return self._next_allowed

    def response_received(self, time: int) -> int:
        """Record a response; returns the next request's emission time."""
        self._last_response = time
        self._next_allowed = time + self.t_ticks
        return self._next_allowed

    def emitted(self, real: bool) -> None:
        """Account one emitted request."""
        self.stats.counter("real" if real else "dummy").add()

    def real_fraction(self) -> float:
        real = self.stats.counter("real").value
        total = real + self.stats.counter("dummy").value
        return real / total if total else 0.0
