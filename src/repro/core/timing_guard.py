"""Fixed-rate request generation (the timing-channel guard).

Section III-B step (2): the on-chip secure engine emits a new Path ORAM
request exactly ``t`` CPU cycles after receiving the previous response --
a real request if the S-App has one queued, otherwise a dummy.  The
observable request stream on the serial link is therefore a deterministic
function of the response stream and leaks nothing about the application's
demand (Section III-G cites [44], [46]).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import cpu_cycles
from repro.sim.periodic import PeriodicStream
from repro.sim.stats import StatSet


class RequestPacer:
    """Tracks when the next ORAM request may be emitted.

    The cadence is a response-anchored :class:`PeriodicStream`: the
    stream's period is the emission interval ``t``, and every response
    re-anchors (:meth:`PeriodicStream.rebase`) the next occurrence to
    ``response + t``.  One emission per occurrence means the stream's
    occurrence count is the emitted-request census -- the frontend never
    materializes missed slots, so the wire stream stays lazy by
    construction.
    """

    def __init__(self, t_cycles: int = 50, name: str = "pacer") -> None:
        if t_cycles < 0:
            raise ValueError("t_cycles must be >= 0")
        self.t_ticks = cpu_cycles(t_cycles)
        self.stats = StatSet(name)
        # t = 0 degenerates to back-to-back emission; the stream still
        # needs a positive period for its closed forms.
        self.stream = PeriodicStream(
            self.t_ticks if self.t_ticks > 0 else 1, first_due=0
        )
        self._last_response: Optional[int] = None

    @property
    def next_allowed(self) -> int:
        """Earliest tick the next request may leave the secure engine."""
        return self.stream.next_due

    def response_received(self, time: int) -> int:
        """Record a response; returns the next request's emission time."""
        self._last_response = time
        due = time + self.t_ticks
        self.stream.rebase(due)
        return due

    def emitted(self, real: bool) -> None:
        """Account one emitted request."""
        self.stream.occurrences += 1
        self.stats.counter("real" if real else "dummy").add()

    def retransmitted(self) -> None:
        """Account one retransmission riding a fixed-rate slot.

        A retransmitted secure-link frame replaces what would otherwise
        be a dummy emission, so it joins the occurrence census without
        counting as a real or dummy request.
        """
        self.stream.occurrences += 1
        self.stats.counter("retransmit").add()

    def real_fraction(self) -> float:
        real = self.stats.counter("real").value
        total = real + self.stats.counter("dummy").value
        return real / total if total else 0.0
