"""Secure-channel sharing policy (Section III-D, D-ORAM/c).

The secure channel serves both the delegated ORAM and any NS-App pages
allocated on it, so it is the slowest channel (Fig. 8(c)).  D-ORAM/c
throttles that contention by letting only ``c`` of the NS-Apps allocate
memory on channel 0; the remaining apps stripe over the three normal
channels only.

The right ``c`` is workload-dependent (Fig. 11).  The paper's rule: profile
the NS memory-latency slowdowns ``T_25mix`` (all four channels, S-App
active) and ``T_33`` (three normal channels only) on a *different trace
segment* and compare ``r = T_25mix / T_33`` -- ``r > 1`` means the secure
channel hurts more than losing a channel, so pick a small ``c``; ``r < 1``
means bandwidth matters more, pick a large ``c`` (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple


def sharing_targets(
    num_ns_apps: int,
    c_limit: int,
    channels: Sequence[int] = (0, 1, 2, 3),
    secure_channel: int = 0,
) -> Dict[int, Tuple[int, ...]]:
    """Channel set per NS-App index under D-ORAM/c.

    The first ``c_limit`` apps (by index) may use every channel including
    the secure one; the rest use only normal channels.  With homogeneous
    multi-programmed copies (the paper's setup) the choice of *which*
    apps get the secure channel is immaterial.
    """
    if not 0 <= c_limit <= num_ns_apps:
        raise ValueError("c_limit out of range")
    if secure_channel not in channels:
        raise ValueError("secure channel not in channel list")
    normal = tuple(ch for ch in channels if ch != secure_channel)
    if not normal:
        raise ValueError("need at least one normal channel")
    full = tuple(channels)
    return {
        app: (full if app < c_limit else normal)
        for app in range(num_ns_apps)
    }


@dataclass(frozen=True)
class SharingDecision:
    """Outcome of the profiling rule."""

    ratio: float
    #: "small" (c < 4) or "large" (c >= 4), Fig. 12's two categories.
    category: str
    #: Concrete suggestion used by D-ORAM/X when no sweep is affordable.
    suggested_c: int


def recommend_c(ratio: float, num_ns_apps: int = 7) -> SharingDecision:
    """Apply the T25mix/T33 rule (Section V-C).

    ``ratio > 1``: the loaded secure channel is the bottleneck -- keep
    most NS-Apps off it (small ``c``).  ``ratio <= 1``: total bandwidth
    dominates -- let most apps use all four channels (large ``c``);
    exactly 1 counts as large ("better to fully utilize all channels").

    Boundary behaviour (pinned by ``tests/core/test_channel_sharing.py``):
    the suggestion is always in ``[1, num_ns_apps]``, so it is directly
    usable as an app count.  In the degenerate small populations
    (``num_ns_apps <= 2``) the "large" branch suggests every app -- with
    two or fewer apps there is nobody worth shedding -- instead of the
    ``n - 2`` rule of thumb going nonpositive.
    """
    if ratio <= 0:
        raise ValueError("ratio must be positive")
    if num_ns_apps < 1:
        raise ValueError("num_ns_apps must be >= 1")
    if ratio > 1.0:
        category = "small"
        suggested = 1
    else:
        category = "large"
        suggested = num_ns_apps if num_ns_apps <= 2 else num_ns_apps - 2
    return SharingDecision(ratio=ratio, category=category, suggested_c=suggested)
