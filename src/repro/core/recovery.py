"""Secure-link recovery: framing, retransmission, watchdog, failover.

The happy-path D-ORAM protocol (:class:`~repro.core.frontend.DelegatorBackend`)
assumes every 72 B packet crosses the BOB link intact.  The threat model
does not: the link and the DIMMs are untrusted, so packets may be
corrupted (MAC verification fails at the receiver), dropped, or delayed.
This module adds the machinery that survives that -- armed only when a
:class:`~repro.faults.plan.FaultPlan` is attached to a run, and built so
that with no faults firing it is schedule-identical to the plain backend
(bit-identical golden digests; see ``tests/faults/test_empty_plan_identity``).

Protocol (stop-and-wait, one outstanding request per S-App session):

* Every CPU->SD request carries a session sequence number.  The SD caches
  the last completed response per session, so a retransmitted request is
  answered from the cache instead of re-running the ORAM access.
* MAC failure at the SD -> a NAK frame after the SD processing delay; MAC
  failure or a NAK at the CPU -> retransmission exactly
  ``cpu_process + t`` ticks after the frame arrived -- the same gap every
  normal emission uses, so a retransmission occupies the slot the next
  (real or dummy) request would have used and the wire stays a
  deterministic function of observable arrivals (no new timing channel;
  audited by :func:`repro.obs.leakage.check_recovery_discipline`).
* A request unanswered for ``deadline_ns`` retransmits at exactly
  ``sent + deadline`` -- again deterministic from the wire.
* ``watchdog_misses`` consecutive deadline expiries (no up-link frame at
  all: the SD's heartbeat is its response stream) declare the SD dead.
  The session fails over to a host-side baseline Path ORAM engine built
  on demand, which walks the same tree through the normal-traffic BOB
  path; the failover is recorded in stats and the ``fault`` trace
  category.

:class:`GuardedRead` is the DRAM leg of the same story: a transient
read bit-flip is detected by the per-bucket MAC, and the block is
re-issued to its sub-channel (bounded by ``block_read_retries``) while
the ORAM sequencer's read phase simply stays open until the clean copy
lands -- the protocol-level "re-issue corrupted path blocks" rule.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.bob.channel import BobChannel
from repro.core.config import PACKET_BYTES
from repro.dram.commands import OpType, TrafficClass
from repro.faults.plan import RecoveryParams
from repro.oram.controller import BlockSink, OramController
from repro.oram.layout import BlockPlacement
from repro.sim.engine import Engine, ns
from repro.sim.stats import StatSet


class FaultRecoveryError(RuntimeError):
    """A fault exhausted its bounded recovery (retry limit hit)."""


class Frame:
    """One secure-link frame: request, response, or NAK.

    Frames are the fault-aware unit of the armed link protocol: the
    injector calls :meth:`link_fault` on them, and a fresh object is
    allocated per transmission (never reused across retransmissions, so
    a corruption mark can't leak into a later clean send).
    """

    __slots__ = ("kind", "seq", "block_id", "attempt", "session", "corrupt")

    REQ = "req"
    RESP = "resp"
    NAK = "nak"

    def __init__(self, kind: str, seq: int, block_id: Optional[int],
                 attempt: int, session: "SecureLinkSession") -> None:
        self.kind = kind
        self.seq = seq
        self.block_id = block_id
        self.attempt = attempt
        self.session = session
        self.corrupt = False

    def link_fault(self, kind: str) -> bool:
        """Absorb one injected link fault; False = not injectable here."""
        if kind == "corrupt":
            self.corrupt = True
            return True
        if kind == "drop":
            # Loss is fine: the sender's deadline timer recovers it.
            return True
        return False


class GuardedRead:
    """MAC-checked block-read completion with bounded re-issue.

    Wraps a read-phase ``on_complete``: the DRAM fault site marks the
    object via :meth:`fault_mark_corrupt` when the burst it completes was
    flipped; at completion time the guard then re-issues the same request
    through ``reissue`` instead of delivering garbage upward.  The inner
    callback (the ORAM controller's block accounting) only ever sees
    clean reads, so the read phase stays open until a verified copy
    lands.
    """

    __slots__ = ("inner", "reissue", "faults", "limit", "attempts", "corrupt")

    def __init__(self, inner: Callable[[int], None], faults,
                 limit: int) -> None:
        self.inner = inner
        #: Set by the issue site right after the MemRequest exists.
        self.reissue: Optional[Callable[[], None]] = None
        self.faults = faults
        self.limit = limit
        self.attempts = 0
        self.corrupt = False

    def fault_mark_corrupt(self) -> bool:
        self.corrupt = True
        return True

    def __call__(self, time: int) -> None:
        if self.corrupt:
            self.corrupt = False
            self.attempts += 1
            if self.attempts > self.limit:
                raise FaultRecoveryError(
                    f"block read failed MAC verification {self.attempts} "
                    f"times; retry bound {self.limit} exhausted"
                )
            self.faults.count("block_rereads")
            self.faults.trace("block_reread", "dram",
                              {"attempt": self.attempts})
            self.reissue()
            return
        self.inner(time)


class SecureLinkSession:
    """CPU-side endpoint of the recovery protocol for one S-App tree."""

    def __init__(
        self,
        engine: Engine,
        secure_bob: BobChannel,
        delegator,
        controller: OramController,
        params: RecoveryParams,
        faults,
        fallback_factory: Callable[[], object],
        cpu_process_ns: float = 2.0,
        name: str = "sdlink",
    ) -> None:
        self.engine = engine
        self.secure_bob = secure_bob
        self.delegator = delegator
        self.controller = controller
        self.params = params
        self.faults = faults
        self.fallback_factory = fallback_factory
        self.cpu_process_ticks = ns(cpu_process_ns)
        self.name = name
        self.stats = StatSet(name)
        faults.register_stats(name, self.stats)
        #: Bound by the system builder once the frontend (and so the
        #: pacer) exists; supplies the fixed-rate slot width ``t``.
        self.pacer = None
        self.t_ticks = 0
        self.deadline_ticks = params.deadline_ticks
        self._seq = 0
        self._attempt = 0
        self._awaiting = False
        self._block_id: Optional[int] = None
        self._on_response: Optional[Callable[[int], None]] = None
        self._deadline_handle = None
        self._misses = 0
        self._failed = False
        #: The host-side baseline backend, built on demand at failover.
        self._fallback = None

    def bind_pacer(self, pacer) -> None:
        self.pacer = pacer
        self.t_ticks = pacer.t_ticks

    @property
    def failed(self) -> bool:
        return self._failed

    # ------------------------------------------------------------------
    # Request side
    # ------------------------------------------------------------------
    def submit(self, block_id: Optional[int],
               on_response: Callable[[int], None]) -> None:
        if self._failed:
            self._fallback.submit(block_id, on_response)
            return
        self._seq += 1
        self._attempt = 1
        self._awaiting = True
        self._block_id = block_id
        self._on_response = on_response
        self._send()

    def _send(self) -> None:
        """Transmit the current attempt and arm its response deadline."""
        if self._attempt > 1:
            self.stats.counter("retransmissions").add()
            if self.pacer is not None:
                self.pacer.retransmitted()
        frame = Frame(Frame.REQ, self._seq, self._block_id,
                      self._attempt, self)
        self.secure_bob.send_down(
            PACKET_BYTES, self.delegator.receive_frame, arg=frame
        )
        self._deadline_handle = self.engine.call_at(
            self.engine.now + self.deadline_ticks,
            self._deadline_fired, self._seq,
        )

    # ------------------------------------------------------------------
    # Response side (up-link delivery callback)
    # ------------------------------------------------------------------
    def _frame_arrived(self, frame: Frame) -> None:
        if self._failed:
            self.stats.counter("frames_after_failover").add()
            return
        # Any up-link frame -- even garbled -- proves the SD is alive.
        self._misses = 0
        now = self.engine.now
        if frame.corrupt:
            self.stats.counter("mac_failures").add()
            self.faults.trace("cpu_mac_fail", self.name, {"seq": self._seq})
            self._slot_retransmit(now)
            return
        if frame.kind == Frame.NAK:
            self.stats.counter("naks").add()
            self._slot_retransmit(now)
            return
        if (frame.kind != Frame.RESP or frame.seq != self._seq
                or not self._awaiting):
            self.stats.counter("stale_frames").add()
            return
        self._awaiting = False
        self._cancel_deadline()
        if self._attempt > 1:
            self.stats.counter("recovered_requests").add()
        on_response = self._on_response
        self._on_response = None
        when = now + self.cpu_process_ticks
        self.engine.call_at(when, on_response, when)

    def _slot_retransmit(self, now: int) -> None:
        """Retransmit in the next fixed-rate slot after ``now``.

        The gap is ``cpu_process + t`` -- identical to the gap between a
        response and the next normal emission, so an observer cannot
        tell a retransmission slot from a fresh (real or dummy) request.
        """
        if not self._awaiting:
            self.stats.counter("stale_frames").add()
            return
        self._cancel_deadline()
        self._attempt += 1
        if self._attempt > self.params.max_attempts:
            self._failover("retry bound")
            return
        self.engine.call_at(
            now + self.cpu_process_ticks + self.t_ticks,
            self._retransmit_emit, self._seq,
        )

    def _retransmit_emit(self, seq: int) -> None:
        if self._failed or not self._awaiting or seq != self._seq:
            return
        self._send()

    # ------------------------------------------------------------------
    # Deadline / watchdog
    # ------------------------------------------------------------------
    def _deadline_fired(self, seq: int) -> None:
        if self._failed or not self._awaiting or seq != self._seq:
            return
        self._deadline_handle = None
        self._misses += 1
        self.stats.counter("timeouts").add()
        self.faults.trace("timeout", self.name,
                          {"seq": seq, "misses": self._misses})
        if self._misses >= self.params.watchdog_misses:
            self._failover("watchdog")
            return
        self._attempt += 1
        if self._attempt > self.params.max_attempts:
            self._failover("retry bound")
            return
        # Retransmit exactly at deadline expiry: sent_k = sent_{k-1} + D,
        # a wire-deterministic schedule.
        self._send()

    def _cancel_deadline(self) -> None:
        handle = self._deadline_handle
        if handle is not None:
            self._deadline_handle = None
            self.engine.cancel(handle)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def _failover(self, why: str) -> None:
        self._failed = True
        self._cancel_deadline()
        self._awaiting = False
        self.stats.counter("failovers").add()
        self.faults.count("failovers")
        self.faults.trace("failover", self.name,
                          {"why": why, "seq": self._seq})
        self._fallback = self.fallback_factory()
        on_response = self._on_response
        self._on_response = None
        if on_response is not None:
            # The in-flight request is replayed on the host-side engine.
            self._fallback.submit(self._block_id, on_response)


class FailoverBackend:
    """Frontend backend that rides a session (and survives its failover).

    Duck-typed to :class:`repro.core.frontend.OramBackend` (not a
    subclass, to keep this module importable from the delegator layer).
    """

    def __init__(self, session: SecureLinkSession) -> None:
        self.session = session

    @property
    def num_user_blocks(self) -> int:
        return self.session.controller.config.num_user_blocks

    def submit(self, block_id: Optional[int],
               on_response: Callable[[int], None]) -> None:
        self.session.submit(block_id, on_response)


class BobChannelSink(BlockSink):
    """Host-side block sink for failover under the BOB architecture.

    The fallback Path ORAM engine runs on the processor, so its path
    blocks cross the serial links as ordinary traffic
    (:meth:`BobChannel.submit`), tagged ``SECURE`` for the schedulers.
    Reads are MAC-verified at the host via :class:`GuardedRead` --
    failover must not give up the DRAM-flip protection.
    """

    def __init__(self, bobs: Dict[int, BobChannel], app_id: int,
                 faults=None, retry_limit: int = 16) -> None:
        self.bobs = bobs
        self.app_id = app_id
        self.faults = faults
        self.retry_limit = retry_limit

    def try_issue(
        self,
        placement: BlockPlacement,
        op: OpType,
        on_complete: Callable[[int], None],
    ) -> bool:
        bob = self.bobs[placement.channel]
        if not bob.can_accept(op):
            return False
        if self.faults is not None and op is OpType.READ:
            guard = GuardedRead(on_complete, self.faults, self.retry_limit)
            guard.reissue = lambda: self._reissue(bob, placement, guard)
            on_complete = guard
        bob.submit(op, placement.subchannel, placement.bank,
                   placement.row, placement.col, self.app_id,
                   TrafficClass.SECURE, on_complete)
        return True

    def _reissue(self, bob: BobChannel, placement: BlockPlacement,
                 guard: GuardedRead) -> None:
        if bob.can_accept(OpType.READ):
            bob.submit(OpType.READ, placement.subchannel, placement.bank,
                       placement.row, placement.col, self.app_id,
                       TrafficClass.SECURE, guard)
        else:
            bob.notify_on_space(
                lambda: self._reissue(bob, placement, guard)
            )

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        fired = [False]

        def once() -> None:
            if not fired[0]:
                fired[0] = True
                callback()

        for bob in self.bobs.values():
            bob.notify_on_space(once)
