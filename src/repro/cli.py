"""Command-line interface: ``python -m repro.cli`` or the ``doram`` script.

Subcommands
-----------
``run SCHEME``       simulate one configuration and print its summary
``trace SCHEME``     run with event tracing on; write JSONL and/or Chrome
                     ``trace_event`` JSON (open in https://ui.perfetto.dev)
``exp EXPERIMENT``   regenerate a paper table/figure (fig4, table1, fig8,
                     fig9, fig10, fig11, fig12, fig13, or ``all``)
``profile BENCH``    print the T25mix/T33 profiling decision for a benchmark
``perf SCHEME``      cProfile one scheme run and print the hottest functions
``faults``           arm a fault plan and run the invariant harness
``serve``            run the multi-tenant open-loop service scenario and
                     print its per-tenant SLO report (or sweep a grid)
``explore``          analytical triage + selective simulation of a
                     configuration grid: recover the latency/goodput
                     Pareto surface while simulating only the model's
                     predicted frontier band
``chaos``            drain a seeded fault campaign (fault intensity x
                     scheme x workload) under the invariant harness and
                     score availability / goodput-under-faults;
                     ``chaos report`` re-renders a drained store
``schemes``          list the recognized scheme names

``sweep`` and ``chaos`` additionally speak the distributed work-queue
protocol: ``--queue DIR`` declares the sweep and drains it with N local
worker processes, ``--join DIR --worker-id ID`` attaches one extra
worker (on this or any host sharing the filesystem), and ``--status
DIR`` prints drain progress (done/leased/pending/failed, per-worker
throughput).

Every subcommand validates its scheme/benchmark/plan arguments *before*
simulating and exits with status 2 and a one-line actionable error on
stderr -- a typo should fail in milliseconds, not after a sweep.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import experiments
from repro.analysis.profiling import profile_ratio
from repro.core.schemes import SCHEMES, make_config, run_scheme
from repro.trace.benchmarks import BENCHMARKS, benchmark_by_code


def _fail(message: str) -> int:
    """One-line actionable error on stderr, exit status 2."""
    print(f"doram: error: {message}", file=sys.stderr)
    return 2


def _validate_point(
    scheme: Optional[str],
    benchmark: Optional[str],
    trace_length: Optional[int],
) -> Optional[str]:
    """Resolve the full config up front; an error string, or ``None``.

    ``make_config`` runs every :class:`SystemConfig` consistency check
    (scheme grammar, k-split vs placement, c-limit range, ...), so a bad
    ``doram+9/99`` fails here instead of mid-build.
    """
    if trace_length is not None and trace_length <= 0:
        return f"--trace-length must be positive (got {trace_length})"
    if benchmark is not None:
        try:
            benchmark_by_code(benchmark)
        except KeyError as exc:
            return str(exc.args[0])
    if scheme is not None:
        try:
            make_config(
                scheme, benchmark or "libq",
                trace_length or experiments.DEFAULT_TRACE_LENGTH,
            )
        except ValueError as exc:
            return str(exc)
    return None


def _parse_benchmarks(
    arg: str,
) -> Tuple[Optional[List[str]], Optional[str]]:
    """``--benchmarks`` flag -> (codes or None, error string or None)."""
    if not arg:
        return None, None
    codes = [code.strip() for code in arg.split(",") if code.strip()]
    if not codes:
        return None, "--benchmarks lists no benchmark codes"
    for code in codes:
        try:
            benchmark_by_code(code)
        except KeyError as exc:
            return None, str(exc.args[0])
    return codes, None


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    def fmt(row: Sequence[object]) -> str:
        return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def _print_keyed(title: str, data: Dict[str, Dict[str, object]]) -> None:
    print(f"\n== {title} ==")
    first = next(iter(data.values()))
    headers = ["bench"] + list(first.keys())
    rows = []
    for key, row in data.items():
        rows.append([key] + [
            f"{v:.3f}" if isinstance(v, float) else str(v)
            for v in row.values()
        ])
    print(_format_table(headers, rows))


def cmd_run(args: argparse.Namespace) -> int:
    error = _validate_point(args.scheme, args.benchmark, args.trace_length)
    if error:
        return _fail(error)
    faults = None
    if args.faults:
        from repro.faults import FaultController, FaultPlan, FaultPlanError

        try:
            plan = FaultPlan.from_file(args.faults)
        except FaultPlanError as exc:
            return _fail(str(exc))
        faults = FaultController(plan)
    if args.sched:
        os.environ["DORAM_SCHED"] = args.sched
    if args.periodic:
        os.environ["DORAM_PERIODIC"] = args.periodic
    if args.dram:
        os.environ["DORAM_DRAM"] = args.dram
    if args.link:
        os.environ["DORAM_LINK"] = args.link
    result = run_scheme(args.scheme, args.benchmark, args.trace_length,
                        faults=faults)
    print(f"scheme={args.scheme} benchmark={args.benchmark} "
          f"trace={args.trace_length}")
    print(f"  NS mean execution time : {result.ns_mean_ns():,.0f} ns")
    print(f"  NS read latency        : {result.read_latency_ns():.1f} ns")
    print(f"  NS write latency       : {result.write_latency_ns():.1f} ns")
    for key, value in sorted(result.s_app.items()):
        print(f"  s_app.{key:<22}: {value:,.2f}")
    print("  channels:")
    for name, row in result.channels.items():
        print(f"    {name:<7} util={row['utilization']:.2f} "
              f"rowhit={row['row_hit_rate']:.2f} "
              f"reads={int(row['reads'])} writes={int(row['writes'])}")
    elided = result.events - result.raw_events
    print(f"  simulated {result.end_time / 16 / 1000:.1f} us, "
          f"{result.events:,} events "
          f"({result.raw_events:,} dispatched, {elided:,} synthesized)")
    if result.fault_summary:
        for section, counters in sorted(result.fault_summary.items()):
            if counters:
                print(f"  {section}: " + ", ".join(
                    f"{key}={value:g}"
                    for key, value in sorted(counters.items())
                ))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        ALL_CATEGORIES,
        Tracer,
        trace_digest,
        write_chrome_trace,
        write_jsonl,
    )

    error = _validate_point(args.scheme, args.benchmark, args.trace_length)
    if error:
        return _fail(error)
    if args.categories:
        categories = frozenset(args.categories.split(","))
        unknown = categories - ALL_CATEGORIES
        if unknown:
            return _fail(
                f"unknown trace categories: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(ALL_CATEGORIES))})"
            )
    else:
        categories = None  # DEFAULT_CATEGORIES
    tracer = Tracer(categories=categories)
    interval = args.snapshot_interval_ns if args.snapshot_interval_ns > 0 \
        else None
    result = run_scheme(args.scheme, args.benchmark, args.trace_length,
                        tracer=tracer, snapshot_interval_ns=interval)
    print(f"scheme={args.scheme} benchmark={args.benchmark} "
          f"trace={args.trace_length}")
    print(f"  simulated {result.end_time / 16 / 1000:.1f} us, "
          f"{result.events:,} engine events, "
          f"{len(tracer)} trace events, "
          f"{len(result.snapshots)} stat snapshots")
    print(f"  digest: {trace_digest(tracer.events)}")
    if args.jsonl:
        write_jsonl(tracer.events, args.jsonl)
        print(f"  wrote {args.jsonl}")
    if args.chrome:
        write_chrome_trace(tracer.events, args.chrome,
                           process_name=f"doram {args.scheme}")
        print(f"  wrote {args.chrome} (load in https://ui.perfetto.dev)")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    error = _validate_point(None, args.benchmark, args.trace_length)
    if error:
        return _fail(error)
    profile = profile_ratio(args.benchmark, trace_length=args.trace_length)
    print(f"benchmark={args.benchmark}")
    print(f"  solo latency   : {profile.latency_solo_ns:.1f} ns")
    print(f"  T25            : {profile.t25:.2f}")
    print(f"  T25mix         : {profile.t25mix:.2f}")
    print(f"  T33            : {profile.t33:.2f}")
    print(f"  ratio          : {profile.ratio:.3f}")
    print(f"  category       : {profile.decision.category} "
          f"(suggest c={profile.decision.suggested_c})")
    return 0


def _component_rollup(stats, top: int) -> List[Tuple[str, float, int]]:
    """Group a pstats table by ``repro.*`` module.

    Sums per-function *self* time (tottime) per module -- unlike
    summing cumulative time, self time adds up without double-counting
    intra-module calls, so the rows attribute the profile's total to
    components.  Non-repro frames (stdlib, builtins) collapse into an
    ``<other>`` row.  Returns ``(module, self_seconds, calls)`` rows,
    largest first, truncated to ``top``.
    """
    per_module: Dict[str, List[float]] = {}
    for (filename, _lineno, _funcname), row in stats.stats.items():
        _cc, ncalls, tottime, _ct = row[0], row[1], row[2], row[3]
        module = "<other>"
        marker = os.sep + "repro" + os.sep
        index = filename.find(marker)
        if index >= 0:
            module = (
                filename[index + 1:]
                .rsplit(".py", 1)[0]
                .replace(os.sep, ".")
            )
        bucket = per_module.setdefault(module, [0.0, 0])
        bucket[0] += tottime
        bucket[1] += ncalls
    rows = sorted(
        ((mod, t, int(n)) for mod, (t, n) in per_module.items()),
        key=lambda r: r[1], reverse=True,
    )
    return rows[:top]


def cmd_perf(args: argparse.Namespace) -> int:
    """Profile one scheme run under cProfile.

    A developer convenience for the hot-path work tracked in
    ``BENCH_sim.json``: runs the same simulation as ``doram run`` with
    the profiler attached and prints the top functions.  Note cProfile's
    per-call overhead inflates small, frequently-called functions
    relative to the sampling profile -- treat the ranking as a map, not
    a measurement (see DESIGN.md, "Performance engineering").
    """
    import cProfile
    import pstats

    error = _validate_point(args.scheme, args.benchmark, args.trace_length)
    if error:
        return _fail(error)
    if args.dram:
        os.environ["DORAM_DRAM"] = args.dram
    if args.link:
        os.environ["DORAM_LINK"] = args.link
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_scheme(args.scheme, args.benchmark, args.trace_length)
    profiler.disable()
    backend = os.environ.get("DORAM_DRAM", "legacy") or "legacy"
    link_backend = os.environ.get("DORAM_LINK", "legacy") or "legacy"
    print(f"scheme={args.scheme} benchmark={args.benchmark} "
          f"trace={args.trace_length} dram={backend} link={link_backend}: "
          f"{result.events:,} events ({result.raw_events:,} dispatched)")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    if args.by_component:
        rows = _component_rollup(stats, args.top)
        total = sum(r[1] for r in rows) or 1.0
        print("\nper-component rollup (self time per repro.* module):")
        print(f"  {'module':<32} {'self_s':>9} {'share':>6} {'calls':>12}")
        for module, seconds, calls in rows:
            print(f"  {module:<32} {seconds:>9.3f} "
                  f"{seconds / total:>6.1%} {calls:>12,}")
    if args.output:
        stats.dump_stats(args.output)
        print(f"wrote {args.output} (load with pstats or snakeviz)")
    return 0


_EXPERIMENTS = (
    "fig4", "table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
)

_EXPERIMENT_TITLES = {
    "fig4": "Fig. 4: NS slowdown vs solo (per scheme)",
    "fig9": "Fig. 9: normalized NS execution time",
    "fig10": "Fig. 10: D-ORAM+k vs D-ORAM",
    "fig11": "Fig. 11: secure-channel sharing sweep",
    "fig12": "Fig. 12: profiled ratio vs best c",
    "fig13": "Fig. 13: NS access latency vs Baseline",
}


def _print_experiment(name: str, output) -> None:
    """Render one driver's output (shared by ``exp`` and ``sweep``)."""
    if name == "table1":
        headers = list(output[0].keys())
        print("\n== Table I: tree-split space/messages ==")
        print(_format_table(
            headers,
            [[f"{v:.3f}" if isinstance(v, float) else str(v)
              for v in r.values()] for r in output],
        ))
    elif name == "fig8":
        print("\n== Fig. 8: channel access latency (ns) ==")
        for key, value in output.items():
            print(f"  {key:<26}: {value:.1f}")
    else:
        _print_keyed(_EXPERIMENT_TITLES[name], output)


def cmd_exp(args: argparse.Namespace) -> int:
    names = _EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    benchmarks, error = _parse_benchmarks(args.benchmarks)
    error = error or _validate_point(None, None, args.trace_length)
    if error:
        return _fail(error)
    length = args.trace_length
    for name in names:
        output = experiments.FIGURE_DRIVERS[name](benchmarks, length)
        _print_experiment(name, output)
    return 0


def _print_sweep_summary(sweep, store) -> None:
    retried = f" retried={sweep.retried}" if sweep.retried else ""
    print(f"sweep: {sweep.total} points "
          f"({sweep.simulated} simulated, {sweep.store_hits} from store) "
          f"workers={sweep.workers} wall={sweep.wall_s:.2f}s "
          f"({sweep.points_per_s:.2f} points/s){retried}")
    if store is not None:
        print(f"store: {store.root} ({len(store)} entries)")


def _cmd_sweep_status(queue_dir: str) -> int:
    """``doram sweep --status DIR``: drain-progress readout."""
    from repro.analysis.workqueue import WorkQueue, WorkQueueError

    try:
        queue = WorkQueue.join(queue_dir)
    except WorkQueueError as exc:
        return _fail(str(exc))
    print(f"queue: {queue_dir} (store {queue.store.root})")
    for line in queue.stats().describe():
        print(f"  {line}")
    return 0


def _cmd_sweep_join(queue_dir: str, worker_id: str, verbose: bool) -> int:
    """``doram sweep --join DIR``: attach one worker to a shared drain."""
    from repro.analysis.workqueue import (
        WorkQueue,
        WorkQueueError,
        default_owner,
    )

    try:
        queue = WorkQueue.join(queue_dir)
    except WorkQueueError as exc:
        return _fail(str(exc))
    owner = worker_id or default_owner()
    progress = (lambda msg: print(f"  {msg}", flush=True)) if verbose \
        else None
    drain = queue.drain(owner=owner, progress=progress)
    print(f"worker {owner}: {drain.completed} completed, "
          f"{drain.skipped} skipped, {drain.reclaimed} reclaimed, "
          f"{len(drain.failed)} failed in {drain.wall_s:.2f}s")
    return 1 if drain.failed else 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Parallel, resumable regeneration of one or more figures."""
    from repro.analysis.sweep import (
        ResultStore,
        SweepFailure,
        default_workers,
    )

    modes = [bool(args.queue), bool(args.join), bool(args.status)]
    if sum(modes) > 1:
        return _fail("--queue, --join and --status are mutually exclusive")
    if args.status:
        return _cmd_sweep_status(args.status)
    if args.join:
        return _cmd_sweep_join(args.join, args.worker_id, args.verbose)

    if args.figures == "all":
        names = _EXPERIMENTS
    else:
        names = tuple(name.strip() for name in args.figures.split(","))
        unknown = set(names) - set(_EXPERIMENTS)
        if unknown:
            return _fail(
                f"unknown figures: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(_EXPERIMENTS)})"
            )
    benchmarks, error = _parse_benchmarks(args.benchmarks)
    error = error or _validate_point(None, None, args.trace_length)
    if error is None and args.timeout < 0:
        error = f"--timeout must be >= 0 (got {args.timeout:g})"
    if error:
        return _fail(error)
    workers = args.workers if args.workers else default_workers()
    store = ResultStore(args.store) if args.store != "none" else None
    progress = (lambda msg: print(f"  {msg}", flush=True)) \
        if args.verbose else None

    if args.queue:
        if store is None:
            return _fail("--queue needs a result store "
                         "(drop --store none)")
        from repro.analysis.workqueue import run_queue_sweep

        points: List = []
        for name in names:
            points.extend(
                experiments.figure_points(name, benchmarks,
                                          args.trace_length)
            )
        sweep, _queue = run_queue_sweep(
            points, args.queue, workers=workers,
            store_root=os.path.abspath(store.root),
            timeout_s=args.timeout or None, progress=progress,
        )
        _print_sweep_summary(sweep, store)
        if sweep.failed:
            print(f"sweep: {len(sweep.failed)} point(s) FAILED after "
                  f"retry:", file=sys.stderr)
            for point, reason in sweep.failed.items():
                print(f"  {point.label}: {reason}", file=sys.stderr)
            return 1
        # The drain filled the store; the drivers now evaluate against
        # pure store hits.
        outputs, _ = experiments.run_figures(
            names, benchmarks, args.trace_length,
            workers=1, store=store, resume=True,
        )
        for name in names:
            _print_experiment(name, outputs[name])
        return 0

    try:
        outputs, sweep = experiments.run_figures(
            names, benchmarks, args.trace_length,
            workers=workers, store=store, resume=not args.no_resume,
            progress=progress, timeout_s=args.timeout or None,
        )
    except SweepFailure as failure:
        sweep = failure.sweep_result
        _print_sweep_summary(sweep, store)
        print(f"sweep: {len(sweep.failed)} point(s) FAILED after retry:",
              file=sys.stderr)
        for point, reason in sweep.failed.items():
            print(f"  {point.label}: {reason}", file=sys.stderr)
        return 1
    _print_sweep_summary(sweep, store)
    for name in names:
        _print_experiment(name, outputs[name])
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Arm a fault plan and audit the end-to-end invariants."""
    from repro.faults import FaultPlan, FaultPlanError

    try:
        plan = FaultPlan.from_file(args.plan)
    except FaultPlanError as exc:
        return _fail(str(exc))
    if args.seed is not None:
        plan = plan.reseeded(args.seed)
    error = _validate_point(args.scheme, args.benchmark, args.trace_length)
    if error:
        return _fail(error)

    print(f"plan {args.plan}:")
    for line in plan.describe():
        print(f"  {line}")
    if args.dry_run:
        return 0

    from repro.faults.invariants import check_fault_invariants

    report = check_fault_invariants(
        plan, scheme=args.scheme, benchmark=args.benchmark,
        trace_length=args.trace_length,
    )
    print(report.describe())
    return 0 if report.ok else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    benchmarks, error = _parse_benchmarks(args.benchmarks)
    error = error or _validate_point(None, None, args.trace_length)
    if error:
        return _fail(error)
    text = generate_report(benchmarks, args.trace_length)
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant open-loop service scenario (or a sweep)."""
    import json as _json

    from repro.scenarios import (
        ARRIVAL_KINDS,
        ScenarioConfig,
        apply_overrides,
        format_report,
        run_scenario,
        run_slo_sweep,
        scenario_grid,
        slo_rows,
    )

    if args.arrival not in ARRIVAL_KINDS:
        return _fail(
            f"unknown arrival kind {args.arrival!r} "
            f"(known: {', '.join(ARRIVAL_KINDS)})"
        )
    if args.sched:
        os.environ["DORAM_SCHED"] = args.sched
    if args.periodic:
        os.environ["DORAM_PERIODIC"] = args.periodic
    if args.dram:
        os.environ["DORAM_DRAM"] = args.dram
    if args.link:
        os.environ["DORAM_LINK"] = args.link
    overrides: Dict[str, object] = {
        "num_tenants": args.tenants,
        "arrival.kind": args.arrival,
        "arrival.rate_rps": args.rate,
        "horizon_ns": args.horizon_us * 1000.0,
        "queue_cap": args.queue_cap,
        "write_fraction": args.write_fraction,
        "slo_target_ns": args.slo_target_ns,
        "control_interval_ns": args.control_interval_us * 1000.0,
        "oram.leaf_level": args.leaf_level,
        "seed": args.seed,
    }
    try:
        config = apply_overrides(ScenarioConfig(), overrides)
    except (TypeError, ValueError) as exc:
        return _fail(str(exc))

    faults = None
    if args.faults:
        from repro.faults import FaultController, FaultPlan, FaultPlanError

        if args.sweep_tenants or args.sweep_rates:
            return _fail(
                "--faults applies to a single scenario run; use 'doram "
                "chaos' for fault sweeps"
            )
        try:
            plan = FaultPlan.from_file(args.faults)
        except FaultPlanError as exc:
            return _fail(str(exc))
        faults = FaultController(plan)

    if args.sweep_tenants or args.sweep_rates:
        from repro.analysis.sweep import ResultStore, default_workers

        tenants = [int(v) for v in args.sweep_tenants.split(",") if v] \
            or [args.tenants]
        rates = [float(v) for v in args.sweep_rates.split(",") if v] \
            or [args.rate]
        base = {k: v for k, v in overrides.items()
                if k not in ("num_tenants", "arrival.rate_rps")}
        points = scenario_grid(tenants, rates, base)
        store = ResultStore(args.store) if args.store != "none" else None
        workers = args.workers if args.workers else default_workers()
        sweep = run_slo_sweep(points, workers=workers, store=store)
        _print_sweep_summary(sweep, store)
        rows = slo_rows(sweep)
        print(_format_table(
            ["tenants", "rate_rps", "offered", "completed", "goodput",
             "p50_ns", "p99_ns", "p999_ns"],
            [[r["tenants"], f"{r['rate_rps']:g}", r["offered"],
              r["completed"], f"{r['goodput_rps']:,.0f}",
              f"{r['worst_p50_ns']:,.0f}", f"{r['worst_p99_ns']:,.0f}",
              f"{r['worst_p999_ns']:,.0f}"] for r in rows],
        ))
        return 0

    tracer = None
    if args.digest:
        from repro.obs import Tracer

        tracer = Tracer()
    result = run_scenario(config, tracer=tracer, faults=faults)
    print(format_report(result))
    if faults is not None:
        fired = result.fault_summary.get("faults", {})
        line = " ".join(f"{k}={v}" for k, v in sorted(fired.items()))
        print(f"faults: {line or 'none fired'}")
    if tracer is not None:
        from repro.obs import trace_digest

        print(f"trace digest: {trace_digest(tracer.events)}")
    if args.json:
        with open(args.json, "w") as fp:
            _json.dump(result.to_json_dict(), fp, sort_keys=True, indent=1)
        print(f"wrote {args.json}")
    return 0


def _chaos_bench_append(rows, label: str, wall_s: float,
                        path: str) -> None:
    from repro.faults.campaign import bench_records

    _tools = os.path.join(
        os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "tools",
    )
    if _tools not in sys.path:
        sys.path.insert(0, _tools)
    import bench_trajectory

    for record in bench_records(rows, label, wall_s):
        bench_trajectory.append(record, path=path)
    print(f"appended {len(rows)} records to {path}")


def cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded fault campaigns: drain, gate invariants, score, report."""
    import dataclasses

    from repro.faults.campaign import (
        CampaignError,
        CampaignSpec,
        chaos_rows,
        render_markdown,
    )

    modes = [bool(args.queue), bool(args.join), bool(args.status)]
    if sum(modes) > 1:
        return _fail("--queue, --join and --status are mutually exclusive")
    if args.status:
        return _cmd_sweep_status(args.status)
    if args.join:
        return _cmd_sweep_join(args.join, args.worker_id, args.verbose)

    if not args.campaign:
        return _fail("chaos needs --campaign SPEC.json "
                     "(see examples/campaigns/)")
    try:
        spec = CampaignSpec.from_file(args.campaign)
        if args.seed is not None:
            spec = dataclasses.replace(spec, seed=args.seed)
    except CampaignError as exc:
        return _fail(str(exc))
    if args.timeout < 0:
        return _fail(f"--timeout must be >= 0 (got {args.timeout:g})")

    if args.dry_run:
        print("\n".join(spec.describe()))
        return 0

    from repro.analysis.sweep import ResultStore, default_workers

    points = spec.grid()
    store = ResultStore(args.store) if args.store != "none" else None
    workers = args.workers if args.workers else default_workers()
    progress = (lambda msg: print(f"  {msg}", flush=True)) \
        if args.verbose else None

    if args.mode == "report":
        if store is None:
            return _fail("chaos report reads a drained store; pass "
                         "--store DIR")
        payloads = {}
        missing = []
        for point in points:
            cached = store.get(point.key(args.digest))
            if cached is None:
                missing.append(point.label)
            else:
                payloads[point] = cached
        if missing:
            return _fail(
                f"store {store.root} is missing {len(missing)} of "
                f"{len(points)} campaign cells (first: {missing[0]}); "
                f"drain with 'doram chaos --campaign ...' first"
            )
        sweep = None
        wall_s = 0.0
    else:
        if args.queue:
            if store is None:
                return _fail("--queue needs a result store "
                             "(drop --store none)")
            from repro.analysis.workqueue import run_queue_sweep

            sweep, _queue = run_queue_sweep(
                points, args.queue, workers=workers,
                store_root=os.path.abspath(store.root),
                with_digest=args.digest,
                timeout_s=args.timeout or None, progress=progress,
            )
        else:
            from repro.analysis.sweep import run_sweep

            sweep = run_sweep(
                points, workers=workers, store=store,
                with_digest=args.digest,
                timeout_s=args.timeout or None, progress=progress,
            )
        _print_sweep_summary(sweep, store)
        if sweep.failed:
            for point, error in sweep.failed.items():
                print(f"FAILED {point.label}: {error}", file=sys.stderr)
            return 1
        payloads = sweep.payloads
        wall_s = sweep.wall_s

    rows = chaos_rows(payloads)
    print(render_markdown(rows))

    # The invariant harness is the oracle: any violated cell fails the
    # whole campaign (after the table, so the curve is still visible).
    violated = [
        point for point in sorted(payloads, key=lambda p: p.label)
        if not payloads[point]["invariants"]["ok"]
    ]
    for point in violated:
        for violation in payloads[point]["invariants"]["violations"]:
            print(f"INVARIANT {point.label}: {violation}",
                  file=sys.stderr)

    if args.out:
        with open(args.out, "w") as fp:
            fp.write(f"# chaos campaign {spec.name!r} "
                     f"(seed {spec.seed}, slo {spec.slo_ns:g} ns)\n\n")
            fp.write(render_markdown(rows))
            fp.write("\n")
        print(f"wrote {args.out}")
    if args.bench_out:
        _chaos_bench_append(rows, args.label, wall_s, args.bench_out)
    return 1 if violated else 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Analytical triage + selective simulation (the Pareto surface)."""
    import time as _time

    from repro.analysis.explore import (
        GRID_PRESETS,
        bench_record,
        build_grid,
        explore,
        write_report,
    )
    from repro.analysis.sweep import ResultStore, default_workers

    if args.grid not in GRID_PRESETS:
        return _fail(f"unknown grid preset {args.grid!r} "
                     f"(known: {', '.join(GRID_PRESETS)})")
    error = _validate_point(None, args.benchmark, args.trace_length)
    if error is None and not 0.0 < args.budget_frac <= 1.0:
        error = f"--budget-frac must be in (0, 1] (got {args.budget_frac:g})"
    if error:
        return _fail(error)
    points = build_grid(args.grid, args.trace_length, args.benchmark)
    workers = args.workers if args.workers else default_workers()
    store = ResultStore(args.store) if args.store != "none" else None
    progress = (lambda msg: print(f"  {msg}", flush=True)) \
        if args.verbose else None

    started = _time.monotonic()
    result = explore(
        points,
        store=store,
        workers=workers,
        queue_root=args.queue or None,
        budget_frac=args.budget_frac,
        anchors_per_family=args.anchors,
        band_frac=args.band_frac,
        max_rounds=args.max_rounds,
        seed=args.seed,
        timeout_s=args.timeout or None,
        progress=progress,
    )
    wall_s = _time.monotonic() - started

    print(f"explore: grid={result.grid_points} "
          f"simulated={result.simulated} "
          f"({result.sim_fraction:.1%}; skipped "
          f"{result.des_points_skipped_frac:.1%}) "
          f"rounds={result.rounds} wall={wall_s:.1f}s")
    print(f"  model-vs-sim error: latency mean "
          f"{result.latency_error['mean']:.3f} "
          f"p95 {result.latency_error['p95']:.3f}; goodput mean "
          f"{result.goodput_error['mean']:.3f} "
          f"p95 {result.goodput_error['p95']:.3f}")
    print(f"  frontier ({len(result.frontier)} point(s)):")
    for row in result.frontier:
        print(f"    {row['label']}: lat={row['latency_us']:.3f}us "
              f"goodput={row['goodput_rps']:.3e}/s "
              f"[{row['bottleneck']}-bound]")
    if result.failed:
        print(f"  {len(result.failed)} point(s) failed:", file=sys.stderr)
        for label, reason in sorted(result.failed.items()):
            print(f"    {label}: {reason}", file=sys.stderr)
    write_report(result, out_json=args.out_json or None,
                 out_md=args.out_md or None)
    for path in (args.out_json, args.out_md):
        if path:
            print(f"wrote {path}")
    if args.bench_out:
        _tools = os.path.join(
            os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))), "tools",
        )
        if _tools not in sys.path:
            sys.path.insert(0, _tools)
        import bench_trajectory

        record = bench_record(result, args.label, args.grid,
                              args.trace_length, wall_s)
        bench_trajectory.append(record, path=args.bench_out)
        print(f"appended {args.bench_out}")
    return 1 if result.failed else 0


def cmd_schemes(_args: argparse.Namespace) -> int:
    print("canonical schemes:", ", ".join(SCHEMES))
    print("parameterized    : doram+K, doram/C, doram+K/C")
    print("benchmarks       :",
          ", ".join(f"{b.code}({b.mpki})" for b in BENCHMARKS))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="doram",
        description="D-ORAM (HPCA 2018) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one scheme")
    p_run.add_argument("scheme")
    p_run.add_argument("--benchmark", default="libq")
    p_run.add_argument("--trace-length", type=int,
                       default=experiments.DEFAULT_TRACE_LENGTH)
    p_run.add_argument("--sched", choices=("heap", "wheel"), default="",
                       help="scheduler backend (DORAM_SCHED)")
    p_run.add_argument("--periodic", choices=("lazy", "eager"), default="",
                       help="periodic-stream mode (DORAM_PERIODIC); eager "
                            "dispatches every occurrence, the census oracle")
    p_run.add_argument("--dram", choices=("legacy", "kernel"), default="",
                       help="DRAM service backend (DORAM_DRAM); legacy is "
                            "the object-per-bank oracle, kernel the batched "
                            "struct-of-arrays path")
    p_run.add_argument("--link", choices=("legacy", "kernel"), default="",
                       help="secure-link pipeline backend (DORAM_LINK); "
                            "legacy is the per-packet oracle, kernel "
                            "macro-steps whole pacer periods")
    p_run.add_argument("--faults", default="",
                       help="arm a fault-plan JSON file "
                            "(see 'doram faults --dry-run')")
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="simulate one scheme with event tracing enabled"
    )
    p_trace.add_argument("scheme")
    p_trace.add_argument("--benchmark", default="libq")
    p_trace.add_argument("--trace-length", type=int, default=2000)
    p_trace.add_argument("--categories", default="",
                         help="comma-separated trace categories "
                              "(default: all except 'engine')")
    p_trace.add_argument("--snapshot-interval-ns", type=float, default=500.0,
                         help="StatSet sampling period in ns; 0 disables")
    p_trace.add_argument("--jsonl", default="",
                         help="write canonical JSONL events to this path")
    p_trace.add_argument("--chrome", default="",
                         help="write Chrome trace_event JSON to this path")
    p_trace.set_defaults(func=cmd_trace)

    p_exp = sub.add_parser("exp", help="regenerate a paper table/figure")
    p_exp.add_argument("experiment", choices=_EXPERIMENTS + ("all",))
    p_exp.add_argument("--benchmarks", default="",
                       help="comma-separated benchmark codes (default: all)")
    p_exp.add_argument("--trace-length", type=int, default=None)
    p_exp.set_defaults(func=cmd_exp)

    p_sweep = sub.add_parser(
        "sweep",
        help="regenerate figures via the parallel, resumable sweep runner",
    )
    p_sweep.add_argument("--figures", default="all",
                         help="comma-separated figure names (default: all)")
    p_sweep.add_argument("--benchmarks", default="",
                         help="comma-separated benchmark codes (default: all)")
    p_sweep.add_argument("--trace-length", type=int, default=None)
    p_sweep.add_argument("--workers", type=int, default=0,
                         help="worker processes (default: "
                              "$DORAM_SWEEP_WORKERS or the CPU count)")
    p_sweep.add_argument("--store", default=None,
                         help="result-store directory (default: "
                              "$DORAM_SWEEP_STORE or .doram-sweep; "
                              "'none' disables the store)")
    p_sweep.add_argument("--no-resume", action="store_true",
                         help="re-simulate every point even if stored")
    p_sweep.add_argument("--timeout", type=float, default=0.0,
                         help="per-point wall-clock budget in seconds; a "
                              "point that exceeds it is retried once, then "
                              "reported as failed (0 disables)")
    p_sweep.add_argument("--verbose", action="store_true",
                         help="print per-point progress")
    p_sweep.add_argument("--queue", default="",
                         help="declare the sweep in this work-queue "
                              "directory and drain it with --workers "
                              "local processes (other hosts may --join)")
    p_sweep.add_argument("--join", default="",
                         help="join an existing work-queue directory as "
                              "one worker and drain until done")
    p_sweep.add_argument("--worker-id", default="",
                         help="stable owner id for --join (default: "
                              "host-pid)")
    p_sweep.add_argument("--status", default="",
                         help="print a work-queue directory's drain "
                              "progress and exit")
    p_sweep.set_defaults(func=cmd_sweep)

    p_prof = sub.add_parser("profile", help="T25mix/T33 profiling")
    p_prof.add_argument("benchmark")
    p_prof.add_argument("--trace-length", type=int,
                        default=experiments.DEFAULT_TRACE_LENGTH)
    p_prof.set_defaults(func=cmd_profile)

    p_perf = sub.add_parser(
        "perf", help="cProfile one scheme run (hot-path development aid)"
    )
    p_perf.add_argument("scheme")
    p_perf.add_argument("--benchmark", default="libq")
    p_perf.add_argument("--trace-length", type=int, default=2000)
    p_perf.add_argument("--dram", choices=("legacy", "kernel"), default="",
                        help="DRAM service backend (DORAM_DRAM)")
    p_perf.add_argument("--link", choices=("legacy", "kernel"), default="",
                        help="secure-link pipeline backend (DORAM_LINK)")
    p_perf.add_argument("--by-component", action="store_true",
                        help="also print cumulative time rolled up per "
                             "repro.* module (--top rows)")
    p_perf.add_argument("--top", type=int, default=25,
                        help="number of functions to print (default 25)")
    p_perf.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort key (default cumulative)")
    p_perf.add_argument("--output", default="",
                        help="also dump raw pstats data to this path")
    p_perf.set_defaults(func=cmd_perf)

    p_faults = sub.add_parser(
        "faults",
        help="arm a fault plan and run the end-to-end invariant harness",
    )
    p_faults.add_argument("--plan", required=True,
                          help="fault-plan JSON file (see examples/faults/)")
    p_faults.add_argument("--scheme", default="doram")
    p_faults.add_argument("--benchmark", default="libq")
    p_faults.add_argument("--trace-length", type=int, default=300)
    p_faults.add_argument("--seed", type=int, default=None,
                          help="override the plan's seed (same schedule "
                               "shape, different draws)")
    p_faults.add_argument("--dry-run", action="store_true",
                          help="print the resolved plan without simulating")
    p_faults.set_defaults(func=cmd_faults)

    p_serve = sub.add_parser(
        "serve",
        help="run the multi-tenant open-loop service scenario (SLO report)",
    )
    p_serve.add_argument("--tenants", type=int, default=8,
                         help="concurrent S-App tenants (default 8)")
    p_serve.add_argument("--arrival", default="poisson",
                         help="arrival process: poisson, bursty, diurnal")
    p_serve.add_argument("--rate", type=float, default=200_000.0,
                         help="per-tenant mean arrival rate in req/s")
    p_serve.add_argument("--horizon-us", type=float, default=100.0,
                         help="offered-load window in microseconds")
    p_serve.add_argument("--seed", type=int, default=1)
    p_serve.add_argument("--queue-cap", type=int, default=64,
                         help="per-tenant admission queue capacity")
    p_serve.add_argument("--write-fraction", type=float, default=0.0)
    p_serve.add_argument("--leaf-level", type=int, default=23,
                         help="ORAM tree leaf level per tenant (default 23; "
                              "use ~12 for quick smoke runs)")
    p_serve.add_argument("--slo-target-ns", type=float, default=0.0,
                         help="mean-sojourn SLO target; >0 arms the "
                              "admission governor")
    p_serve.add_argument("--control-interval-us", type=float, default=10.0,
                         help="admission-governor cadence in microseconds")
    p_serve.add_argument("--sched", choices=("heap", "wheel"), default="",
                         help="scheduler backend (DORAM_SCHED)")
    p_serve.add_argument("--periodic", choices=("lazy", "eager"), default="",
                         help="periodic-stream mode (DORAM_PERIODIC)")
    p_serve.add_argument("--dram", choices=("legacy", "kernel"), default="",
                         help="DRAM service backend (DORAM_DRAM)")
    p_serve.add_argument("--link", choices=("legacy", "kernel"), default="",
                         help="secure-link pipeline backend (DORAM_LINK)")
    p_serve.add_argument("--faults", default="",
                         help="arm a fault-plan JSON on the scenario "
                              "fabric (see examples/faults/)")
    p_serve.add_argument("--digest", action="store_true",
                         help="trace the run and print its event digest")
    p_serve.add_argument("--json", default="",
                         help="write the full SLO report JSON to this path")
    p_serve.add_argument("--sweep-tenants", default="",
                         help="comma-separated tenant counts; with "
                              "--sweep-rates, runs a grid via the sweep "
                              "runner instead of one scenario")
    p_serve.add_argument("--sweep-rates", default="",
                         help="comma-separated per-tenant rates (req/s)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="sweep worker processes")
    p_serve.add_argument("--store", default="none",
                         help="sweep result-store directory "
                              "(default: none = no store)")
    p_serve.set_defaults(func=cmd_serve)

    p_explore = sub.add_parser(
        "explore",
        help="recover the latency/goodput Pareto surface of a config "
             "grid, simulating only the model's predicted frontier band",
    )
    p_explore.add_argument("--grid", default="smoke",
                           help="grid preset: smoke, fig9, full")
    p_explore.add_argument("--benchmark", default="li")
    p_explore.add_argument("--trace-length", type=int, default=300)
    p_explore.add_argument("--workers", type=int, default=0,
                           help="simulation worker processes")
    p_explore.add_argument("--queue", default="",
                           help="drain simulations through this "
                                "work-queue directory (enables "
                                "multi-host participation)")
    p_explore.add_argument("--store", default=None,
                           help="result-store directory ('none' "
                                "disables)")
    p_explore.add_argument("--budget-frac", type=float, default=0.2,
                           help="max fraction of the grid the DES may "
                                "simulate (default 0.2)")
    p_explore.add_argument("--anchors", type=int, default=3,
                           help="calibration anchors per model family")
    p_explore.add_argument("--band-frac", type=float, default=0.08,
                           help="predicted-frontier band width")
    p_explore.add_argument("--max-rounds", type=int, default=4)
    p_explore.add_argument("--seed", type=int, default=1)
    p_explore.add_argument("--timeout", type=float, default=0.0,
                           help="per-point budget in seconds (0 = none)")
    p_explore.add_argument("--out-json", default="",
                           help="write the Pareto surface JSON here")
    p_explore.add_argument("--out-md", default="",
                           help="write the markdown report here")
    p_explore.add_argument("--bench-out", default="",
                           help="append a BENCH_explore.json record here")
    p_explore.add_argument("--label", default="local",
                           help="bench record label (default local)")
    p_explore.add_argument("--verbose", action="store_true")
    p_explore.set_defaults(func=cmd_explore)

    p_chaos = sub.add_parser(
        "chaos",
        help="drain a seeded fault campaign (fault-intensity x scheme x "
             "workload grid) and score availability under faults",
    )
    p_chaos.add_argument("mode", nargs="?", default="run",
                         choices=("run", "report"),
                         help="run: drain the grid; report: render "
                              "tables from an already-drained store")
    p_chaos.add_argument("--campaign", default="",
                         help="campaign-spec JSON file "
                              "(see examples/campaigns/)")
    p_chaos.add_argument("--seed", type=int, default=None,
                         help="override the spec's base seed (fresh "
                              "per-point fault draws)")
    p_chaos.add_argument("--dry-run", action="store_true",
                         help="print the resolved grid and per-point "
                              "plans without simulating")
    p_chaos.add_argument("--store", default="none",
                         help="result-store directory ('none' disables; "
                              "required for --queue and report mode)")
    p_chaos.add_argument("--workers", type=int, default=0,
                         help="worker processes (default: CPU count)")
    p_chaos.add_argument("--digest", action="store_true",
                         help="also capture full event-trace digests "
                              "per point")
    p_chaos.add_argument("--timeout", type=float, default=0.0,
                         help="per-point wall-clock budget in seconds "
                              "(0 disables)")
    p_chaos.add_argument("--queue", default="",
                         help="declare the campaign in this work-queue "
                              "directory and drain it with --workers "
                              "local processes (other hosts may --join)")
    p_chaos.add_argument("--join", default="",
                         help="join an existing work-queue directory as "
                              "one worker and drain until done")
    p_chaos.add_argument("--worker-id", default="",
                         help="stable owner id for --join "
                              "(default: host-pid)")
    p_chaos.add_argument("--status", default="",
                         help="print a work-queue directory's drain "
                              "progress and exit")
    p_chaos.add_argument("--out", default="",
                         help="write the markdown availability table "
                              "to this file")
    p_chaos.add_argument("--bench-out", default="",
                         help="append BENCH_chaos.json records here")
    p_chaos.add_argument("--label", default="local",
                         help="bench record label (default local)")
    p_chaos.add_argument("--verbose", action="store_true",
                         help="print per-point progress")
    p_chaos.set_defaults(func=cmd_chaos)

    p_schemes = sub.add_parser("schemes", help="list schemes/benchmarks")
    p_schemes.set_defaults(func=cmd_schemes)

    p_report = sub.add_parser(
        "report", help="generate the paper-vs-measured EXPERIMENTS report"
    )
    p_report.add_argument("--benchmarks", default="")
    p_report.add_argument("--trace-length", type=int, default=None)
    p_report.add_argument("--output", default="",
                          help="write to a file instead of stdout")
    p_report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
