"""Path ORAM configuration.

Defaults are the paper's Section IV setup: a 4 GB tree with ``L = 23``
(24 levels, root at level 0), ``Z = 4`` blocks per bucket, the top three
levels held in an on-controller tree-top cache, and the remaining 21
levels laid out as 7-level subtrees [Ren et al., ISCA'13].
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OramConfig:
    """Geometry and protocol parameters of one Path ORAM instance."""

    #: Leaf level index; the tree has ``leaf_level + 1`` levels.
    leaf_level: int = 23
    #: Blocks per bucket (Z).
    bucket_size: int = 4
    #: Cache line / block size in bytes.
    block_bytes: int = 64
    #: Levels (from the root) held in the controller's tree-top cache and
    #: therefore never fetched from memory.
    treetop_levels: int = 3
    #: Height of the subtree packing unit for the row-buffer-friendly
    #: layout.
    subtree_levels: int = 7
    #: Fraction of tree block capacity exposed as user blocks; Path ORAM
    #: needs ~50 % slack to keep stash overflow negligible (Section III-C).
    utilization: float = 0.5

    def __post_init__(self) -> None:
        if self.leaf_level < 0:
            raise ValueError("leaf_level must be >= 0")
        if self.bucket_size < 1:
            raise ValueError("bucket_size must be >= 1")
        if not 0 <= self.treetop_levels <= self.leaf_level + 1:
            raise ValueError("treetop_levels out of range")
        if self.subtree_levels < 1:
            raise ValueError("subtree_levels must be >= 1")
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")

    # -- derived geometry ------------------------------------------------
    @property
    def num_levels(self) -> int:
        return self.leaf_level + 1

    @property
    def num_leaves(self) -> int:
        return 1 << self.leaf_level

    @property
    def num_buckets(self) -> int:
        return (1 << (self.leaf_level + 1)) - 1

    @property
    def capacity_blocks(self) -> int:
        """Total block slots in the tree."""
        return self.num_buckets * self.bucket_size

    @property
    def num_user_blocks(self) -> int:
        """Logical blocks the ORAM exposes (utilization-limited)."""
        return int(self.capacity_blocks * self.utilization)

    @property
    def tree_bytes(self) -> int:
        return self.capacity_blocks * self.block_bytes

    @property
    def levels_fetched(self) -> int:
        """Levels actually read from memory per access (tree-top cached
        levels excluded) -- 21 with the paper's defaults."""
        return self.num_levels - self.treetop_levels

    @property
    def blocks_per_phase(self) -> int:
        """Block transfers per read (or write) phase -- 84 by default."""
        return self.levels_fetched * self.bucket_size

    def scaled(self, leaf_level: int) -> "OramConfig":
        """A copy with a smaller tree (testing / fast simulation)."""
        return OramConfig(
            leaf_level=leaf_level,
            bucket_size=self.bucket_size,
            block_bytes=self.block_bytes,
            treetop_levels=min(self.treetop_levels, leaf_level),
            subtree_levels=min(self.subtree_levels, leaf_level + 1),
            utilization=self.utilization,
        )


#: The paper's configuration (Section IV): 4 GB tree, L=23, Z=4.
PAPER_ORAM = OramConfig()
