"""Recursive position map (the standard Path ORAM recursion).

D-ORAM keeps the position map inside the secure delegator's SRAM, which
works because the SD is dedicated hardware.  The classic alternative --
store the map itself in a smaller ORAM, recursively, until the top map
fits in the client -- is the construction every Path ORAM deployment
without big private memory uses (Stefanov et al. §4; Freecursive [13] in
the paper's references).  This module implements it functionally so the
library covers both design points, and exposes the access-amplification
cost recursion incurs (each logical access walks every map level).

Layout: each position-map block packs ``entries_per_block`` leaf labels
of the level below (8 x 8-byte big-endian entries per 64 B block by
default).  Map level 1 stores the data ORAM's leaves; level 2 stores
level 1's leaves; and so on until at most ``client_entries`` labels
remain, which the client keeps directly.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.oram.config import OramConfig
from repro.oram.path_oram import PathOram

_ENTRY_BYTES = 8


def _config_for(num_blocks: int, template: OramConfig) -> OramConfig:
    """Smallest tree (same Z/blocksize) holding ``num_blocks`` blocks."""
    level = 1
    while True:
        candidate = OramConfig(
            leaf_level=level,
            bucket_size=template.bucket_size,
            block_bytes=template.block_bytes,
            treetop_levels=0,
            subtree_levels=1,
            utilization=template.utilization,
        )
        if candidate.num_user_blocks >= num_blocks:
            return candidate
        level += 1


class RecursivePathOram:
    """Path ORAM with its position map stored in recursive ORAMs."""

    def __init__(
        self,
        config: OramConfig,
        entries_per_block: Optional[int] = None,
        client_entries: int = 64,
        seed: int = 0,
    ) -> None:
        if config.leaf_level > 14:
            raise ValueError("functional recursion materializes trees")
        self.config = config
        self.entries_per_block = (
            entries_per_block
            or max(2, config.block_bytes // _ENTRY_BYTES)
        )
        if self.entries_per_block * _ENTRY_BYTES > config.block_bytes:
            raise ValueError("entries do not fit in a block")
        self._rng = random.Random(seed ^ 0x4EC)

        # Data ORAM (level 0) + map ORAMs (level 1..k), all with
        # externally managed positions.
        self.levels: List[PathOram] = [
            PathOram(config, seed=seed, external_positions=True)
        ]
        entries = config.num_user_blocks
        level_seed = seed
        while entries > client_entries:
            blocks = -(-entries // self.entries_per_block)
            level_seed += 1
            map_config = _config_for(blocks, config)
            self.levels.append(
                PathOram(map_config, seed=level_seed,
                         external_positions=True)
            )
            entries = blocks
        # Client-resident top map: one leaf label per top-level block.
        top_leaves = self.levels[-1].config.num_leaves
        self.client_map: List[int] = [
            self._rng.randrange(top_leaves) for _ in range(entries)
        ]
        #: Map blocks start zeroed = "entry 0"; a zero entry means
        #: "unassigned": the walker lazily randomizes it on first touch.
        self._assigned = [set() for _ in self.levels]

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        """Recursion depth including the data ORAM."""
        return len(self.levels)

    @property
    def num_user_blocks(self) -> int:
        return self.config.num_user_blocks

    def paths_per_access(self) -> int:
        """Physical path accesses one logical access costs."""
        return len(self.levels)

    # ------------------------------------------------------------------
    def read(self, block_id: int) -> bytes:
        return self._access(block_id, None)

    def write(self, block_id: int, data: bytes) -> None:
        if len(data) != self.config.block_bytes:
            raise ValueError("wrong block size")
        self._access(block_id, data)

    # ------------------------------------------------------------------
    def _access(self, block_id: int, new_data: Optional[bytes]) -> bytes:
        if not 0 <= block_id < self.config.num_user_blocks:
            raise ValueError("block id out of range")

        # Indices of the entry we need at each level, bottom-up:
        # index[0] = data block, index[i] = map block at level i.
        indices = [block_id]
        for _ in range(1, len(self.levels)):
            indices.append(indices[-1] // self.entries_per_block)

        # Walk top-down.  At the top, the client map holds the leaf of
        # the top map block; at each level the fetched map block yields
        # (and re-randomizes) the leaf for the level below.
        top = len(self.levels) - 1
        top_index = indices[top] if top >= 1 else block_id
        if top == 0:
            # Degenerate case: everything fits in the client map.
            old_leaf = self.client_map[block_id]
            new_leaf = self._rng.randrange(self.config.num_leaves)
            self.client_map[block_id] = new_leaf
            mutate = (lambda _old: new_data) if new_data is not None else None
            return self.levels[0].access_at(
                block_id, old_leaf, new_leaf, mutate
            )

        leaf = self.client_map[top_index]
        new_top_leaf = self._rng.randrange(self.levels[top].config.num_leaves)
        self.client_map[top_index] = new_top_leaf
        current_old, current_new = leaf, new_top_leaf

        for level in range(top, 0, -1):
            oram = self.levels[level]
            below = self.levels[level - 1]
            entry_index = indices[level - 1] % self.entries_per_block
            below_new = self._rng.randrange(below.config.num_leaves)
            holder = {}

            def mutate(data: bytes, _entry=entry_index, _new=below_new,
                       _lvl=level, _below=below, _idx=indices[level - 1]):
                offset = _entry * _ENTRY_BYTES
                raw = data[offset: offset + _ENTRY_BYTES]
                if _idx in self._assigned[_lvl - 1]:
                    holder["old"] = int.from_bytes(raw, "big")
                else:
                    # First touch of the below-level object: assign a
                    # fresh random leaf (zeroed storage is meaningless).
                    holder["old"] = self._rng.randrange(
                        _below.config.num_leaves)
                    self._assigned[_lvl - 1].add(_idx)
                patched = (
                    data[:offset]
                    + _new.to_bytes(_ENTRY_BYTES, "big")
                    + data[offset + _ENTRY_BYTES:]
                )
                return patched

            oram.access_at(indices[level], current_old, current_new, mutate)
            current_old = holder["old"]
            current_new = below_new

        # Finally the data ORAM access with the leaf recovered from the
        # level-1 map.
        data_oram = self.levels[0]
        if new_data is not None:
            pre = data_oram.access_at(
                block_id, current_old, current_new,
                mutate=lambda _old: new_data,
            )
            return pre
        return data_oram.access_at(block_id, current_old, current_new)

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        for oram in self.levels:
            oram.check_invariants()
