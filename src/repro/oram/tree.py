"""Binary-tree geometry for Path ORAM.

Buckets are numbered heap-style starting at 1 (root = 1, children of node
``n`` are ``2n`` and ``2n+1``), so the bucket on the path to leaf ``x`` at
level ``l`` is a single shift: ``(2^L + x) >> (L - l)``.  All functions are
pure arithmetic -- nothing here allocates tree storage, which is what lets
the timing simulation use the paper's full 4 GB tree.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.oram.config import OramConfig


class TreeGeometry:
    """Pure-arithmetic view of the ORAM tree shape."""

    def __init__(self, config: OramConfig) -> None:
        self.config = config
        self.leaf_level = config.leaf_level
        self.num_leaves = config.num_leaves
        self.num_buckets = config.num_buckets

    # ------------------------------------------------------------------
    def level_of(self, bucket: int) -> int:
        """Level of heap-indexed ``bucket`` (root = level 0)."""
        self._check_bucket(bucket)
        return bucket.bit_length() - 1

    def bucket_on_path(self, leaf: int, level: int) -> int:
        """Heap index of the level-``level`` bucket on the path to ``leaf``."""
        self._check_leaf(leaf)
        if not 0 <= level <= self.leaf_level:
            raise ValueError(f"level {level} out of range")
        return (self.num_leaves + leaf) >> (self.leaf_level - level)

    def path_buckets(self, leaf: int) -> List[int]:
        """Heap indices root..leaf of the path to ``leaf``."""
        self._check_leaf(leaf)
        node = self.num_leaves + leaf
        path = []
        while node >= 1:
            path.append(node)
            node >>= 1
        path.reverse()
        return path

    def on_same_path(self, leaf_a: int, leaf_b: int, level: int) -> bool:
        """Do the two leaves share their level-``level`` bucket?"""
        return self.bucket_on_path(leaf_a, level) == self.bucket_on_path(
            leaf_b, level
        )

    def leaf_range(self, bucket: int) -> range:
        """Leaves whose paths pass through ``bucket``."""
        level = self.level_of(bucket)
        span = 1 << (self.leaf_level - level)
        first = (bucket - (1 << level)) * span
        return range(first, first + span)

    def buckets_at_level(self, level: int) -> range:
        """Heap indices of every bucket at ``level``."""
        if not 0 <= level <= self.leaf_level:
            raise ValueError(f"level {level} out of range")
        return range(1 << level, 1 << (level + 1))

    def iter_buckets(self) -> Iterator[int]:
        return iter(range(1, self.num_buckets + 1))

    # ------------------------------------------------------------------
    def _check_leaf(self, leaf: int) -> None:
        if not 0 <= leaf < self.num_leaves:
            raise ValueError(f"leaf {leaf} out of range")

    def _check_bucket(self, bucket: int) -> None:
        if not 1 <= bucket <= self.num_buckets:
            raise ValueError(f"bucket {bucket} out of range")
