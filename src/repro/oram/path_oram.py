"""A complete functional Path ORAM.

Implements the protocol of Fig. 3 end to end with real data: position map
lookup and remap, full-path read into the stash, requested-block service,
greedy write-back with dummy padding, and (optionally) per-bucket
encryption + authentication through a pluggable codec from
:mod:`repro.crypto.codec`.

This layer is what the security tests exercise: correctness (reads return
the last write), the placement invariant (every block lives on its
assigned path or in the stash), bounded stash occupancy, and obliviousness
(the physical address trace is independent of the logical access
pattern).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.oram.config import OramConfig
from repro.oram.protocol import ProtocolState, greedy_evict
from repro.oram.stash import Stash
from repro.oram.tree import TreeGeometry


class Block:
    """A real data block inside a bucket."""

    __slots__ = ("block_id", "leaf", "data")

    def __init__(self, block_id: int, leaf: int, data: bytes) -> None:
        self.block_id = block_id
        self.leaf = leaf
        self.data = data


class PathOram:
    """Functional Path ORAM over an in-memory bucket array.

    Parameters
    ----------
    config:
        Geometry; use small ``leaf_level`` values (<= 14) -- the bucket
        array is fully materialized.
    codec:
        Optional bucket codec (see :class:`repro.crypto.codec.BucketCodec`)
        applied on every bucket store/load, so the "memory" only ever
        holds ciphertext -- as the untrusted DIMMs do in the paper.
    trace_hook:
        Optional callable invoked as ``trace_hook(kind, bucket_index)``
        for every bucket touched (``kind`` in ``{"read", "write"}``);
        the obliviousness tests record the physical trace through it.
    """

    def __init__(
        self,
        config: OramConfig,
        seed: int = 0,
        codec: Optional[object] = None,
        stash_capacity: Optional[int] = 500,
        trace_hook: Optional[Callable[[str, int], None]] = None,
        external_positions: bool = False,
    ) -> None:
        if config.leaf_level > 16:
            raise ValueError(
                "functional PathOram materializes the tree; use "
                "leaf_level <= 16 (the timing controller handles L=23)"
            )
        self.config = config
        self.geometry = TreeGeometry(config)
        #: When ``external_positions`` is set the caller manages leaves
        #: (the recursive construction stores them in a higher ORAM) and
        #: the internal position map is unused.
        self.external_positions = external_positions
        self.state = ProtocolState(config, seed=seed, lazy=False)
        self.stash = Stash(stash_capacity)
        self.codec = codec
        self.trace_hook = trace_hook
        self._rng = random.Random(seed ^ 0xB10C)

        # Bucket store, heap-indexed 1..num_buckets.  Entry: encoded bytes
        # when a codec is set, else a plain list of Blocks.
        empty: List[Block] = []
        self._buckets: List[object] = [None] * (config.num_buckets + 1)
        for bucket in self.geometry.iter_buckets():
            self._buckets[bucket] = self._encode(bucket, list(empty))

        self.accesses = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def read(self, block_id: int) -> bytes:
        """Oblivious read; unwritten blocks read as zeros."""
        return self._access(block_id, None)

    def write(self, block_id: int, data: bytes) -> None:
        """Oblivious write of one block."""
        if len(data) != self.config.block_bytes:
            raise ValueError(
                f"data must be exactly {self.config.block_bytes} bytes"
            )
        self._access(block_id, data)

    def dummy_access(self) -> None:
        """A protocol-indistinguishable access touching no user block."""
        leaf = self.state.dummy_path()
        self._read_path(leaf)
        self._write_path(leaf)
        self.accesses += 1

    def access_at(
        self,
        block_id: int,
        old_leaf: int,
        new_leaf: int,
        mutate: Optional[Callable[[bytes], bytes]] = None,
    ) -> bytes:
        """Protocol access with caller-managed positions.

        The recursive position-map construction
        (:class:`repro.oram.recursive.RecursivePathOram`) stores this
        ORAM's leaf assignments in a *higher* ORAM, so it supplies the
        block's current leaf and its fresh replacement here instead of
        consulting the internal map.  ``mutate``, if given, transforms
        the block's current contents in the same access (used to splice
        one position-map entry without a second path access).  Returns
        the block's contents *before* mutation.
        """
        if not self.external_positions:
            raise RuntimeError(
                "access_at requires external_positions=True"
            )
        if not 0 <= block_id < self.config.num_user_blocks:
            raise ValueError(f"block id {block_id} out of range")
        self._read_path(old_leaf)
        entry = self.stash.get(block_id)
        if entry is None:
            data = bytes(self.config.block_bytes)
        else:
            data = entry[1].data  # type: ignore[union-attr]
        new_data = mutate(data) if mutate is not None else data
        if len(new_data) != self.config.block_bytes:
            raise ValueError("mutate must preserve the block size")
        self.stash.put(block_id, new_leaf,
                       Block(block_id, new_leaf, new_data))
        self._write_path(old_leaf)
        self.accesses += 1
        return data

    # ------------------------------------------------------------------
    # Protocol steps
    # ------------------------------------------------------------------
    def _access(self, block_id: int, new_data: Optional[bytes]) -> bytes:
        if not 0 <= block_id < self.config.num_user_blocks:
            raise ValueError(f"block id {block_id} out of range")
        old_leaf, new_leaf = self.state.access_begin(block_id)

        self._read_path(old_leaf)

        entry = self.stash.get(block_id)
        if entry is None:
            # First touch: the block logically exists as zeros.
            data = bytes(self.config.block_bytes)
        else:
            data = entry[1].data  # type: ignore[union-attr]
        if new_data is not None:
            data = new_data
        block = Block(block_id, new_leaf, data)
        self.stash.put(block_id, new_leaf, block)

        self._write_path(old_leaf)
        self.accesses += 1
        return data

    def _read_path(self, leaf: int) -> None:
        """Fetch every bucket on the path; real blocks land in the stash."""
        for bucket in self.geometry.path_buckets(leaf):
            if self.trace_hook:
                self.trace_hook("read", bucket)
            for block in self._decode(bucket, self._buckets[bucket]):
                self.stash.put(block.block_id, block.leaf, block)
            self._buckets[bucket] = self._encode(bucket, [])

    def _write_path(self, leaf: int) -> None:
        """Greedy write-back along the path, padded with dummies."""
        plan = greedy_evict(
            self.geometry, self.stash, leaf, self.config.bucket_size
        )
        for bucket, block_ids in plan.items():
            blocks = []
            for block_id in block_ids:
                _leaf, block = self.stash.pop(block_id)
                blocks.append(block)
            if self.trace_hook:
                self.trace_hook("write", bucket)
            self._buckets[bucket] = self._encode(bucket, blocks)

    # ------------------------------------------------------------------
    # Bucket (de)serialization through the codec
    # ------------------------------------------------------------------
    def _encode(self, bucket: int, blocks: List[Block]) -> object:
        if self.codec is None:
            return blocks
        tuples = [(b.block_id, b.leaf, b.data) for b in blocks]
        return self.codec.encode_bucket(bucket, tuples,
                                        self.config.bucket_size,
                                        self.config.block_bytes)

    def _decode(self, bucket: int, raw: object) -> List[Block]:
        if self.codec is None:
            return list(raw)  # type: ignore[arg-type]
        tuples = self.codec.decode_bucket(bucket, raw,
                                          self.config.bucket_size,
                                          self.config.block_bytes)
        return [Block(bid, leaf, data) for bid, leaf, data in tuples]

    # ------------------------------------------------------------------
    # Invariant checking (tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any protocol-invariant violation."""
        seen = {}
        for bucket in self.geometry.iter_buckets():
            blocks = self._decode(bucket, self._buckets[bucket])
            if len(blocks) > self.config.bucket_size:
                raise AssertionError(
                    f"bucket {bucket} holds {len(blocks)} > Z"
                )
            level = self.geometry.level_of(bucket)
            for block in blocks:
                if block.block_id in seen:
                    raise AssertionError(
                        f"block {block.block_id} duplicated "
                        f"({seen[block.block_id]} and bucket {bucket})"
                    )
                seen[block.block_id] = f"bucket {bucket}"
                # The mapped leaf recorded inside the tree must route
                # through this bucket -- the core placement invariant.
                if self.geometry.bucket_on_path(block.leaf, level) != bucket:
                    raise AssertionError(
                        f"block {block.block_id} in bucket {bucket} "
                        f"off its assigned path (leaf {block.leaf})"
                    )
                if not self.external_positions:
                    mapped = self.state.position_map.lookup(block.block_id)
                    if mapped != block.leaf:
                        raise AssertionError(
                            f"block {block.block_id} leaf tag {block.leaf} "
                            f"disagrees with position map {mapped}"
                        )
        for block_id, leaf, _payload in self.stash.items():
            if block_id in seen:
                raise AssertionError(
                    f"block {block_id} both in stash and {seen[block_id]}"
                )
            seen[block_id] = "stash"
