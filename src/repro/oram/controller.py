"""Timing-side Path ORAM engine.

Converts one protected request (or a dummy) into the paper's path traffic:
with the default configuration, 84 block reads followed by 84 block
writes, striped over four (sub-)channels, with tree-top-cached levels
skipped.  Where those block accesses go is abstracted behind
:class:`BlockSink`, so the same engine serves both the on-chip Path ORAM
baseline (blocks into the four direct-attached channels) and the D-ORAM
secure delegator (local sub-channels plus cross-channel messages for
split-tree levels).

The two protocol phases are exposed separately (``begin_read`` /
``begin_write``) because D-ORAM's delegator sends the response packet as
soon as the read phase finishes and overlaps the write phase with the
response's link flight (Section III-B).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.dram.commands import OpType
from repro.obs.tracer import NULL_TRACER
from repro.oram.config import OramConfig
from repro.oram.layout import BlockPlacement, OramLayout
from repro.oram.protocol import ProtocolState
from repro.sim.engine import Engine
from repro.sim.stats import StatSet


class BlockSink:
    """Where path block accesses go (duck-typed interface).

    ``try_issue`` returns False when the route toward ``placement`` has no
    capacity right now; the controller will re-pump after
    ``notify_on_space`` fires.  ``on_complete`` must fire exactly once per
    accepted block.
    """

    def try_issue(
        self,
        placement: BlockPlacement,
        op: OpType,
        on_complete: Callable[[int], None],
    ) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def notify_on_space(self, callback: Callable[[], None]) -> None:  # pragma: no cover
        raise NotImplementedError


def _ignore_completion(_time: int) -> None:
    """Write-phase blocks complete at handoff; DRAM completion is moot."""


class OramController:
    """One Path ORAM engine processing a single access at a time."""

    def __init__(
        self,
        engine: Engine,
        config: OramConfig,
        layout: OramLayout,
        sink: BlockSink,
        seed: int = 0,
        name: str = "oram",
        fork_path: bool = False,
        tracer=None,
    ) -> None:
        """``fork_path`` enables the read-side merging of Fork Path
        [Zhang et al., MICRO'15]: buckets shared between consecutive
        path accesses (the common tree prefix) were just written by the
        previous access, so their contents are still in the engine's
        buffers and need not be re-read.  With uniformly random paths
        and a 3-level tree-top cache the expected overlap below the
        cache is small (sum of 2^-l for l >= 3, about a quarter of a
        bucket), which the ablation bench quantifies."""
        self.engine = engine
        self.config = config
        self.layout = layout
        self.sink = sink
        self.state = ProtocolState(config, seed=seed, lazy=True)
        self.stats = StatSet(name)
        self.fork_path = fork_path
        self.name = name
        self._tracer = (
            tracer if tracer is not None else NULL_TRACER
        ).category("oram")
        self._access_real = False

        self._placements: List[BlockPlacement] = []
        self._read_placements: List[BlockPlacement] = []
        self._pending: List[BlockPlacement] = []
        self._outstanding = 0
        self._phase: Optional[str] = None
        self._phase_start = 0
        self._phase_done_cb: Optional[Callable[[int], None]] = None
        self._waiting_for_space = False
        self._prev_buckets: frozenset = frozenset()

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._phase is not None

    @property
    def phase(self) -> Optional[str]:
        return self._phase

    # ------------------------------------------------------------------
    def begin_read(
        self,
        block_id: Optional[int],
        on_done: Callable[[int], None],
    ) -> None:
        """Start the read phase for ``block_id`` (``None`` = dummy access).

        The protocol step: look up (and remap) the block's leaf, then
        fetch every non-cached block on that path.
        """
        if self.busy:
            raise RuntimeError("ORAM controller is mid-access")
        if block_id is None:
            leaf = self.state.dummy_path()
            self.stats.counter("dummy_accesses").add()
        else:
            leaf, _new_leaf = self.state.access_begin(block_id)
            self.stats.counter("real_accesses").add()
        self._access_real = block_id is not None
        if self._tracer.enabled:
            self._tracer.instant(
                "oram", "access", self.name, self.engine.now,
                {"real": int(self._access_real), "leaf": leaf},
            )
        self._placements = self.layout.path_placements(leaf)
        if self.fork_path:
            buckets = frozenset(p.bucket for p in self._placements)
            overlap = buckets & self._prev_buckets
            self._prev_buckets = buckets
            if overlap:
                skip = [p for p in self._placements if p.bucket in overlap]
                self.stats.counter("fork_skipped_blocks").add(len(skip))
                # Read phase skips the still-buffered buckets; the write
                # phase rewrites the full path as the protocol requires.
                self._read_placements = [
                    p for p in self._placements if p.bucket not in overlap
                ]
            else:
                self._read_placements = self._placements
        else:
            self._read_placements = self._placements
        self._start_phase("read", on_done)

    def begin_write(self, on_done: Callable[[int], None]) -> None:
        """Write the same path back (re-encrypted blocks + evictions)."""
        if self.busy:
            raise RuntimeError("ORAM controller is mid-phase")
        if not self._placements:
            raise RuntimeError("begin_write without a preceding read phase")
        self._start_phase("write", on_done)

    # ------------------------------------------------------------------
    def _start_phase(self, phase: str, on_done: Callable[[int], None]) -> None:
        self._phase = phase
        self._phase_start = self.engine.now
        self._phase_done_cb = on_done
        source = self._read_placements if phase == "read" else self._placements
        self._pending = list(source)
        self._outstanding = 0
        self._pump()

    def _pump(self) -> None:
        self._waiting_for_space = False
        if self._phase is None:
            return
        reading = self._phase == "read"
        op = OpType.READ if reading else OpType.WRITE
        # Read phase: the response needs every block, so completions are
        # tracked.  Write phase: the protocol's "write phase ongoing" is
        # the engine *issuing* the re-encrypted path; a block is done when
        # the memory system accepts it (queue back-pressure still paces
        # the engine), matching how [32]/[39] stream the write-back.
        on_done = self._block_done if reading else _ignore_completion
        # Collect the stalled placements into a fresh list (order kept)
        # instead of popping mid-list; try_issue never re-enters _pump
        # synchronously, so iterating the old list is safe.
        sink = self.sink
        stalled = []
        outstanding = 0
        for placement in self._pending:
            if sink.try_issue(placement, op, on_done):
                outstanding += 1
            else:
                stalled.append(placement)
        self._pending = stalled
        if reading and outstanding:
            self._outstanding += outstanding
        if self._pending and not self._waiting_for_space:
            self._waiting_for_space = True
            self.sink.notify_on_space(self._pump)
        self._maybe_finish()

    def _block_done(self, _time: int) -> None:
        # Runs once per read-phase block; the common case (more blocks
        # still in flight) must fall through with minimal work.
        outstanding = self._outstanding - 1
        self._outstanding = outstanding
        if self._pending:
            if not self._waiting_for_space:
                # Capacity likely freed somewhere; retry stalled placements.
                self._pump()
            # else: the space callback will re-pump; _maybe_finish would
            # bail on the non-empty pending list anyway.
            return
        if outstanding == 0:
            self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self._phase is None or self._pending or self._outstanding:
            return
        phase, cb = self._phase, self._phase_done_cb
        self._phase = None
        self._phase_done_cb = None
        elapsed = self.engine.now - self._phase_start
        self.stats.latency(f"{phase}_phase").record(elapsed)
        if self._tracer.enabled:
            blocks = (
                self._read_placements if phase == "read" else self._placements
            )
            self._tracer.complete(
                "oram", f"{phase}_phase", self.name, self._phase_start,
                elapsed,
                {"blocks": len(blocks), "real": int(self._access_real)},
            )
        if cb is not None:
            cb(self.engine.now)
