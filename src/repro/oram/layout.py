"""Physical placement of the ORAM tree in DRAM.

Implements the two layout techniques Section IV adopts plus the D-ORAM+k
split of Section III-C:

* **Tree-top cache** -- the top ``treetop_levels`` levels live in the
  controller's SRAM and produce no DRAM traffic.
* **Subtree layout** [Ren et al., ISCA'13] -- the remaining levels are cut
  into ``subtree_levels``-high subtrees; each subtree's buckets are packed
  contiguously so one path's accesses inside a subtree land in the same
  DRAM row.  With the paper's numbers (7-level subtrees, one block of each
  bucket per sub-channel) a subtree occupies 127 consecutive lines per
  sub-channel -- almost exactly one 8 KB row.
* **Tree split (D-ORAM+k)** -- levels beyond ``home_levels`` are relocated
  to the normal channels: block 0 of a relocated bucket goes to channel
  ``(bucket mod 3) + 1`` and blocks 1..3 go to channels 1..3 (Fig. 7),
  which produces exactly Table I's space distribution.

The layout is pure arithmetic over bucket indices -- the 4 GB tree is
never materialized.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dram.address_mapping import DeviceGeometry, decode_line
from repro.oram.config import OramConfig
from repro.oram.tree import TreeGeometry


class BlockPlacement:
    """Where one (bucket, slot) block lives, plus routing information.

    ``remote`` is True when the block sits on a normal channel and must
    be reached with explicit cross-channel messages (Section III-C).

    A plain ``__slots__`` class rather than a frozen dataclass: one
    placement is built per non-cached path block, and the per-field
    ``object.__setattr__`` of a frozen dataclass made construction the
    hottest allocation in the whole-system profile.  Treat instances as
    immutable.
    """

    __slots__ = (
        "bucket", "slot", "channel", "subchannel", "bank", "row", "col",
        "remote",
    )

    def __init__(self, bucket: int, slot: int, channel: int,
                 subchannel: int, bank: int, row: int, col: int,
                 remote: bool) -> None:
        self.bucket = bucket
        self.slot = slot
        self.channel = channel
        self.subchannel = subchannel
        self.bank = bank
        self.row = row
        self.col = col
        self.remote = remote

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockPlacement(bucket={self.bucket}, slot={self.slot}, "
            f"channel={self.channel}, subchannel={self.subchannel}, "
            f"bank={self.bank}, row={self.row}, col={self.col}, "
            f"remote={self.remote})"
        )


#: Upper bound on memoized placements per layout (dominated by the hot
#: root levels; ~100 B per entry keeps the worst case around 25 MB).
_PLACE_CACHE_LIMIT = 1 << 18
_PLACE_MISS = object()


class OramLayout:
    """Bucket/slot -> device-coordinate mapping for one ORAM tree."""

    def __init__(
        self,
        config: OramConfig,
        home_targets: Sequence[Tuple[int, int]],
        geometry: DeviceGeometry = DeviceGeometry(),
        base_line: int = 1 << 24,
        home_levels: Optional[int] = None,
        remote_targets: Sequence[Tuple[int, int]] = (),
        remote_base_line: int = 1 << 24,
    ) -> None:
        """
        Parameters
        ----------
        home_targets:
            (channel, subchannel) pairs of the tree's home -- the secure
            channel's four sub-channels in D-ORAM, or the four parallel
            channels in the on-chip baseline.  Bucket slot ``s`` lives on
            ``home_targets[s % len(home_targets)]``.
        home_levels:
            Number of levels (from the root) kept on the home targets;
            levels beyond it are relocated to ``remote_targets``.  Default:
            all levels.  D-ORAM+k passes ``config.num_levels - k``.
        base_line / remote_base_line:
            Line-index origin of the ORAM region inside each target,
            placed far above the NS-App slices.
        """
        if not home_targets:
            raise ValueError("home_targets must not be empty")
        self.config = config
        self.tree = TreeGeometry(config)
        self.home_targets = list(home_targets)
        self.device = geometry
        self.base_line = base_line
        self.home_levels = (
            config.num_levels if home_levels is None else home_levels
        )
        if not config.treetop_levels <= self.home_levels <= config.num_levels:
            raise ValueError("home_levels out of range")
        self.split_k = config.num_levels - self.home_levels
        self.remote_targets = list(remote_targets)
        self.remote_base_line = remote_base_line
        if self.split_k > 0 and not self.remote_targets:
            raise ValueError("tree split requires remote targets")
        self._blocks_per_target = -(-config.bucket_size // len(self.home_targets))
        # Precompute per-segment bucket-count prefix for the subtree packing.
        self._segment_offsets = self._build_segments()
        # Per-remote-level line-base offsets.
        self._remote_level_bases = self._build_remote_bases()
        self._place_cache: dict = {}
        # Hot-path caches: placement construction runs per path block and
        # chased these through two dataclasses before.
        self._bucket_size = config.bucket_size
        self._treetop_levels = config.treetop_levels
        self._lines_per_row = geometry.lines_per_row
        self._num_banks = geometry.num_banks
        self._num_rows = geometry.num_rows

    # ------------------------------------------------------------------
    # Subtree packing of home levels
    # ------------------------------------------------------------------
    def _build_segments(self) -> List[Tuple[int, int, int]]:
        """Segments of the home region: (top_level, height, bucket_offset).

        Levels ``treetop_levels .. home_levels-1`` are cut into
        ``subtree_levels``-high slices; ``bucket_offset`` is the number of
        packed buckets in all earlier segments (per whole tree, before
        division across targets).
        """
        segments: List[Tuple[int, int, int]] = []
        level = self.config.treetop_levels
        offset = 0
        while level < self.home_levels:
            height = min(self.config.subtree_levels, self.home_levels - level)
            segments.append((level, height, offset))
            # Buckets in this slice of the tree:
            buckets = sum(1 << l for l in range(level, level + height))
            offset += buckets
            level += height
        return segments

    def _segment_of(self, level: int) -> Tuple[int, int, int]:
        for top, height, offset in reversed(self._segment_offsets):
            if level >= top:
                if level >= top + height:
                    raise ValueError(f"level {level} beyond home region")
                return top, height, offset
        raise ValueError(f"level {level} is tree-top cached")

    def packed_index(self, bucket: int) -> int:
        """Subtree-packed sequential index of a home-region bucket.

        Buckets of one subtree are contiguous (BFS order inside the
        subtree), subtrees are laid out by subtree id.
        """
        level = self.tree.level_of(bucket)
        top, height, seg_offset = self._segment_of(level)
        depth = level - top
        subtree_root = bucket >> depth
        subtree_id = subtree_root - (1 << top)
        subtree_size = (1 << height) - 1
        bfs = ((1 << depth) - 1) + (bucket - (subtree_root << depth))
        return seg_offset + subtree_id * subtree_size + bfs

    # ------------------------------------------------------------------
    # Remote (split) levels
    # ------------------------------------------------------------------
    def _build_remote_bases(self) -> dict:
        """Line-base per relocated level, stacked per channel.

        Each remote channel must reserve room, per level, for the *larger*
        of its two shares: the all-buckets slot-j region and the
        one-in-three slot-0 region; we simply stack both regions.
        """
        bases = {}
        cursor = self.remote_base_line
        for level in range(self.home_levels, self.config.num_levels):
            buckets = 1 << level
            per_target_blocks = buckets  # slot-j region (one block/bucket)
            rotated_blocks = -(-buckets // max(len(self.remote_targets), 1))
            bases[level] = (cursor, cursor + per_target_blocks)
            cursor += per_target_blocks + rotated_blocks
        return bases

    # ------------------------------------------------------------------
    @property
    def home_lines_per_target(self) -> int:
        """Line-space footprint of the home region on each target.

        Used to stack multiple ORAM trees (multi-S-App) without overlap:
        the next tree's ``base_line`` starts past this footprint.
        """
        packed_buckets = 0
        if self._segment_offsets:
            top, height, offset = self._segment_offsets[-1]
            packed_buckets = offset + sum(
                1 << l for l in range(top, top + height)
            )
        return packed_buckets * self._blocks_per_target

    # ------------------------------------------------------------------
    # Public mapping
    # ------------------------------------------------------------------
    def is_cached(self, bucket: int) -> bool:
        """True when the bucket lives in the tree-top cache (no DRAM)."""
        return self.tree.level_of(bucket) < self.config.treetop_levels

    def place(self, bucket: int, slot: int) -> Optional[BlockPlacement]:
        """Placement of one block; ``None`` for tree-top-cached buckets."""
        if not 0 <= slot < self._bucket_size:
            raise ValueError(f"slot {slot} out of range")
        # The mapping is a pure function of (bucket, slot) and placements
        # are treated as immutable, so memoize: every access recomputes
        # the same root levels.  The cache is bounded so a huge tree
        # cannot exhaust memory; once full, cold (deep) buckets are
        # computed fresh.
        key = bucket * self._bucket_size + slot
        cache = self._place_cache
        placement = cache.get(key, _PLACE_MISS)
        if placement is not _PLACE_MISS:
            return placement
        level = self.tree.level_of(bucket)
        if level < self._treetop_levels:
            placement = None
        elif level < self.home_levels:
            placement = self._place_home(bucket, slot, level)
        else:
            placement = self._place_remote(bucket, slot, level)
        if len(cache) < _PLACE_CACHE_LIMIT:
            cache[key] = placement
        return placement

    def _place_home(self, bucket: int, slot: int, level: int) -> BlockPlacement:
        targets = self.home_targets
        n = len(targets)
        target = targets[slot % n]
        # Inline of :meth:`packed_index` (the level is already known) and
        # of :func:`decode_line` (the line index is positive by
        # construction: ``base_line`` sits above the NS-App slices).
        top, height, seg_offset = self._segment_of(level)
        depth = level - top
        subtree_root = bucket >> depth
        packed = (
            seg_offset
            + (subtree_root - (1 << top)) * ((1 << height) - 1)
            + (1 << depth) - 1
            + (bucket - (subtree_root << depth))
        )
        line = self.base_line + packed * self._blocks_per_target + slot // n
        lines_per_row = self._lines_per_row
        col = line % lines_per_row
        row_group = line // lines_per_row
        num_banks = self._num_banks
        return BlockPlacement(
            bucket, slot, target[0], target[1],
            row_group % num_banks,
            (row_group // num_banks) % self._num_rows,
            col, False,
        )

    def _place_remote(self, bucket: int, slot: int, level: int) -> BlockPlacement:
        n = len(self.remote_targets)
        index_in_level = bucket - (1 << level)
        slot_base, rot_base = self._remote_level_bases[level]
        if slot == 0:
            # Fig. 7: first block rotates across the normal channels.
            target = self.remote_targets[index_in_level % n]
            line = rot_base + index_in_level // n
        else:
            target = self.remote_targets[(slot - 1) % n]
            line = slot_base + index_in_level
        bank, row, col = decode_line(line, self.device)
        return BlockPlacement(
            bucket, slot, target[0], target[1], bank, row, col, True
        )

    # ------------------------------------------------------------------
    def path_placements(self, leaf: int) -> List[BlockPlacement]:
        """Every DRAM block touched by an access to ``leaf``'s path."""
        placements: List[BlockPlacement] = []
        for bucket in self.tree.path_buckets(leaf):
            for slot in range(self.config.bucket_size):
                placement = self.place(bucket, slot)
                if placement is not None:
                    placements.append(placement)
        return placements

    # ------------------------------------------------------------------
    # Space accounting (Table I)
    # ------------------------------------------------------------------
    def channel_share(self) -> dict:
        """Fraction of tree blocks per channel (Table I, left half)."""
        totals: dict = {}
        for level in range(self.config.num_levels):
            buckets = 1 << level
            for slot in range(self.config.bucket_size):
                if level < self.home_levels:
                    target = self.home_targets[slot % len(self.home_targets)]
                    totals[target[0]] = totals.get(target[0], 0) + buckets
                elif slot == 0:
                    for j, target in enumerate(self.remote_targets):
                        count = (
                            buckets // len(self.remote_targets)
                            + (1 if j < buckets % len(self.remote_targets) else 0)
                        )
                        totals[target[0]] = totals.get(target[0], 0) + count
                else:
                    target = self.remote_targets[
                        (slot - 1) % len(self.remote_targets)
                    ]
                    totals[target[0]] = totals.get(target[0], 0) + buckets
        grand = sum(totals.values())
        return {ch: count / grand for ch, count in sorted(totals.items())}
