"""Position maps: logical block id -> assigned leaf.

Two implementations with one interface:

* :class:`DensePositionMap` materializes every entry -- used by the
  functional ORAM, whose trees are small.
* :class:`LazyPositionMap` assigns leaves on first touch -- used by the
  timing controller so the paper's 4 GB tree (33 M user blocks) costs
  memory only for blocks the workload actually touches.  First-touch
  assignment is distribution-identical to a fully pre-randomized map.

In D-ORAM the map lives inside the secure delegator (Fig. 3/Fig. 6); in
the on-chip baseline it lives in the processor's secure engine.  Either
way it is inside the TCB and costs no DRAM traffic (the paper does not
use recursive ORAM).
"""

from __future__ import annotations

import random
from typing import Dict, Optional


class DensePositionMap:
    """Array-backed map, fully randomized at construction."""

    def __init__(self, num_blocks: int, num_leaves: int, seed: int = 0) -> None:
        if num_blocks < 0 or num_leaves < 1:
            raise ValueError("bad position map geometry")
        self.num_leaves = num_leaves
        self._rng = random.Random(seed)
        self._map = [
            self._rng.randrange(num_leaves) for _ in range(num_blocks)
        ]

    def __len__(self) -> int:
        return len(self._map)

    def lookup(self, block_id: int) -> int:
        return self._map[block_id]

    def remap(self, block_id: int) -> int:
        """Assign a fresh uniformly random leaf and return it."""
        leaf = self._rng.randrange(self.num_leaves)
        self._map[block_id] = leaf
        return leaf


class LazyPositionMap:
    """Dict-backed map that assigns leaves on first lookup."""

    def __init__(self, num_blocks: int, num_leaves: int, seed: int = 0) -> None:
        if num_blocks < 0 or num_leaves < 1:
            raise ValueError("bad position map geometry")
        self.num_blocks = num_blocks
        self.num_leaves = num_leaves
        self._rng = random.Random(seed)
        self._map: Dict[int, int] = {}

    def __len__(self) -> int:
        return self.num_blocks

    @property
    def touched(self) -> int:
        """Entries materialized so far."""
        return len(self._map)

    def _check(self, block_id: int) -> None:
        if not 0 <= block_id < self.num_blocks:
            raise ValueError(f"block {block_id} out of range")

    def lookup(self, block_id: int) -> int:
        self._check(block_id)
        leaf = self._map.get(block_id)
        if leaf is None:
            leaf = self._rng.randrange(self.num_leaves)
            self._map[block_id] = leaf
        return leaf

    def remap(self, block_id: int) -> int:
        self._check(block_id)
        leaf = self._rng.randrange(self.num_leaves)
        self._map[block_id] = leaf
        return leaf
