"""The Path ORAM stash.

Blocks that could not be evicted back to the tree (their assigned path was
full at every shared level) wait here.  Theory bounds the occupancy by a
constant with overwhelming probability when Z >= 4 and utilization <= 50 %;
:class:`StashOverflow` turns a violated bound into a loud failure, since a
silently growing stash is the "critical exception that fails the protocol"
Section III-C is designed to avoid.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class StashOverflow(RuntimeError):
    """Raised when the stash exceeds its configured capacity."""


class Stash:
    """Block-id keyed stash holding ``(leaf, payload)`` tuples."""

    def __init__(self, capacity: Optional[int] = 200) -> None:
        """``capacity=None`` disables the overflow check (analysis runs)."""
        self.capacity = capacity
        self._blocks: Dict[int, Tuple[int, object]] = {}
        self.peak = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    def put(self, block_id: int, leaf: int, payload: object) -> None:
        self._blocks[block_id] = (leaf, payload)
        if len(self._blocks) > self.peak:
            self.peak = len(self._blocks)
        if self.capacity is not None and len(self._blocks) > self.capacity:
            raise StashOverflow(
                f"stash holds {len(self._blocks)} > capacity {self.capacity}"
            )

    def get(self, block_id: int) -> Optional[Tuple[int, object]]:
        return self._blocks.get(block_id)

    def pop(self, block_id: int) -> Tuple[int, object]:
        return self._blocks.pop(block_id)

    def update_leaf(self, block_id: int, leaf: int) -> None:
        _old, payload = self._blocks[block_id]
        self._blocks[block_id] = (leaf, payload)

    def items(self) -> Iterator[Tuple[int, int, object]]:
        """Yield ``(block_id, leaf, payload)`` snapshots."""
        return ((b, lp[0], lp[1]) for b, lp in list(self._blocks.items()))

    def evictable_for(self, shares_bucket) -> List[int]:
        """Block ids whose assigned leaf satisfies ``shares_bucket(leaf)``.

        The caller (eviction logic) supplies a predicate closed over the
        current path and level.
        """
        return [
            block_id
            for block_id, (leaf, _payload) in self._blocks.items()
            if shares_bucket(leaf)
        ]
