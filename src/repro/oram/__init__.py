"""Path ORAM substrate.

Two layers:

* **Functional** (:class:`~repro.oram.path_oram.PathOram` and its
  bookkeeping core :class:`~repro.oram.protocol.ProtocolState`): a complete
  Path ORAM [Stefanov et al., CCS'13] with position map, stash, greedy
  write-back eviction, optional encryption and integrity.  Small trees,
  real data, heavily property-tested.

* **Timing** (:class:`~repro.oram.controller.OramController`): the engine
  that converts one protected memory request into the paper's hundreds of
  DRAM block accesses, with the ISCA'13 optimizations Section IV adopts --
  tree-top caching (top 3 levels in SRAM) and the 7-level subtree layout
  that maximizes row-buffer hits.  It never materializes tree contents
  (the paper's 4 GB tree stays arithmetic), only the address stream.
"""

from repro.oram.config import OramConfig
from repro.oram.tree import TreeGeometry
from repro.oram.position_map import DensePositionMap, LazyPositionMap
from repro.oram.stash import Stash, StashOverflow
from repro.oram.protocol import ProtocolState
from repro.oram.path_oram import PathOram
from repro.oram.layout import OramLayout, BlockPlacement
from repro.oram.ring_oram import RingOram, RingParams
from repro.oram.recursive import RecursivePathOram

__all__ = [
    "OramConfig",
    "TreeGeometry",
    "DensePositionMap",
    "LazyPositionMap",
    "Stash",
    "StashOverflow",
    "ProtocolState",
    "PathOram",
    "OramLayout",
    "BlockPlacement",
    "RingOram",
    "RingParams",
    "RecursivePathOram",
]
