"""Pure protocol logic shared by the functional and timing ORAM layers.

The only algorithmically interesting step of Path ORAM is write-phase
eviction: after a path has been read into the stash, which stash blocks go
back into which bucket?  :func:`greedy_evict` implements the standard
greedy strategy of Stefanov et al. -- walk the path leaf -> root and at
each bucket place up to Z blocks whose assigned path shares that bucket.
Greedy from the leaf is optimal for a single path: a block placed as deep
as possible never takes a slot a shallower block needed.

``ProtocolState`` bundles the per-access bookkeeping (position map lookup
and remap, dummy/real accounting) used identically by the functional ORAM
and the timing controller.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.oram.config import OramConfig
from repro.oram.position_map import DensePositionMap, LazyPositionMap
from repro.oram.stash import Stash
from repro.oram.tree import TreeGeometry


def greedy_evict(
    geometry: TreeGeometry,
    stash: Stash,
    leaf: int,
    bucket_size: int,
) -> Dict[int, List[int]]:
    """Plan the write phase for the path to ``leaf``.

    Returns ``{bucket_heap_index: [block_id, ...]}`` covering *every*
    bucket on the path (possibly with empty lists); the caller pads with
    dummies up to Z and removes the chosen blocks from the stash.
    """
    plan: Dict[int, List[int]] = {}
    placed = set()
    path = geometry.path_buckets(leaf)
    for level in range(geometry.leaf_level, -1, -1):
        bucket = path[level]
        candidates = [
            block_id
            for block_id, block_leaf, _payload in stash.items()
            if block_id not in placed
            and geometry.on_same_path(block_leaf, leaf, level)
        ]
        # Deterministic order keeps runs reproducible.
        candidates.sort()
        chosen = candidates[:bucket_size]
        placed.update(chosen)
        plan[bucket] = chosen
    return plan


class ProtocolState:
    """Position-map handling and access accounting for one ORAM instance.

    ``access_begin`` performs the protocol's first step -- look up the
    block's current leaf and immediately remap it to a fresh random leaf --
    and returns the *old* leaf, whose path the caller must read and
    rewrite.  Dummy accesses pick a uniformly random path and touch no
    position-map state, exactly as the D-ORAM timing-channel guard
    requires (Section III-B, step 2).
    """

    def __init__(self, config: OramConfig, seed: int = 0, lazy: bool = True) -> None:
        self.config = config
        self.geometry = TreeGeometry(config)
        map_cls = LazyPositionMap if lazy else DensePositionMap
        self.position_map = map_cls(
            config.num_user_blocks, config.num_leaves, seed=seed
        )
        self._dummy_rng = random.Random(seed ^ 0x5EED)
        self.real_accesses = 0
        self.dummy_accesses = 0

    def access_begin(self, block_id: int) -> tuple:
        """Start a real access: returns ``(old_leaf, new_leaf)``."""
        old_leaf = self.position_map.lookup(block_id)
        new_leaf = self.position_map.remap(block_id)
        self.real_accesses += 1
        return old_leaf, new_leaf

    def dummy_path(self) -> int:
        """Uniformly random path for a dummy access."""
        self.dummy_accesses += 1
        return self._dummy_rng.randrange(self.config.num_leaves)
