"""Ring ORAM (Ren et al., 2014) -- the bandwidth-optimized alternative.

Section VI of the D-ORAM paper cites Ring ORAM as the related line of
work that attacks the same bottleneck (ORAM bandwidth) at the protocol
level rather than architecturally.  This functional implementation lets
the reproduction compare protocol bandwidth per access directly (see
``benchmarks/bench_ablation_protocol.py``).

Protocol sketch
---------------
Buckets hold ``Z`` real slots plus ``S`` dummy slots behind a per-bucket
random permutation.  A read touches **one slot per bucket** on the path
(the block's slot if present, else an unread dummy), so the online cost
is ``L+1`` blocks instead of Path ORAM's ``Z*(L+1)``.  Every ``A``
accesses an *eviction path* (reverse-lexicographic order) is read and
rewritten wholesale, and any bucket whose unread-dummy budget is
exhausted is *early-reshuffled*.  Client-side metadata (which slot holds
what, how many touches since the last shuffle) lives in the TCB, as in
the original design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.oram.config import OramConfig
from repro.oram.position_map import DensePositionMap
from repro.oram.stash import Stash
from repro.oram.tree import TreeGeometry

#: Marks a slot holding no real block.
_EMPTY = None


@dataclass
class RingParams:
    """Ring ORAM protocol parameters.

    ``dummies`` (S) bounds how many times a bucket can be touched before
    reshuffling; ``evict_rate`` (A) is the access count between eviction
    paths.  The original paper proves stash bounds for S >= Z and
    A <= ~2Z; the defaults satisfy both.
    """

    bucket_real: int = 4     # Z
    dummies: int = 8         # S
    evict_rate: int = 4      # A

    def __post_init__(self) -> None:
        if self.bucket_real < 1 or self.dummies < 1 or self.evict_rate < 1:
            raise ValueError("Ring ORAM parameters must be positive")

    @property
    def slots(self) -> int:
        return self.bucket_real + self.dummies


class _Bucket:
    """Server-side bucket: fixed slot array + client-known metadata."""

    __slots__ = ("blocks", "reads_since_shuffle")

    def __init__(self, slots: int) -> None:
        # slot -> (block_id, leaf, data) or None; consumed slots are
        # replaced by None.
        self.blocks: List[Optional[Tuple[int, int, bytes]]] = [_EMPTY] * slots
        self.reads_since_shuffle = 0


class RingOram:
    """Functional Ring ORAM over an in-memory tree."""

    def __init__(
        self,
        config: OramConfig,
        params: RingParams = RingParams(),
        seed: int = 0,
        stash_capacity: Optional[int] = 500,
    ) -> None:
        if config.leaf_level > 14:
            raise ValueError("functional RingOram materializes the tree")
        if params.bucket_real != config.bucket_size:
            raise ValueError("params.bucket_real must equal config Z")
        self.config = config
        self.params = params
        self.geometry = TreeGeometry(config)
        self.position_map = DensePositionMap(
            config.num_user_blocks, config.num_leaves, seed=seed
        )
        self.stash = Stash(stash_capacity)
        self._rng = random.Random(seed ^ 0x5106)
        self._buckets: List[Optional[_Bucket]] = [None] + [
            _Bucket(params.slots) for _ in range(config.num_buckets)
        ]
        self._access_count = 0
        self._evict_counter = 0
        # Bandwidth accounting (physical block transfers).
        self.blocks_read = 0
        self.blocks_written = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def read(self, block_id: int) -> bytes:
        return self._access(block_id, None)

    def write(self, block_id: int, data: bytes) -> None:
        if len(data) != self.config.block_bytes:
            raise ValueError("wrong block size")
        self._access(block_id, data)

    def amortized_blocks_per_access(self) -> float:
        """Measured physical blocks moved per logical access."""
        if self._access_count == 0:
            return 0.0
        return (self.blocks_read + self.blocks_written) / self._access_count

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def _access(self, block_id: int, new_data: Optional[bytes]) -> bytes:
        if not 0 <= block_id < self.config.num_user_blocks:
            raise ValueError("block id out of range")
        leaf = self.position_map.lookup(block_id)
        new_leaf = self.position_map.remap(block_id)

        # Online phase: one physical block per bucket on the path.
        found: Optional[Tuple[int, int, bytes]] = None
        for bucket_idx in self.geometry.path_buckets(leaf):
            bucket = self._buckets[bucket_idx]
            slot = self._slot_of(bucket, block_id)
            if slot is not None:
                found = bucket.blocks[slot]
                bucket.blocks[slot] = _EMPTY
            # Real or dummy, exactly one slot is consumed and transferred.
            self.blocks_read += 1
            bucket.reads_since_shuffle += 1

        entry = self.stash.get(block_id)
        if found is not None:
            data = found[2]
        elif entry is not None:
            data = entry[1]
        else:
            data = bytes(self.config.block_bytes)
        if new_data is not None:
            data = new_data
        self.stash.put(block_id, new_leaf, data)

        self._access_count += 1

        # Early reshuffle of any bucket out of dummy budget.
        for bucket_idx in self.geometry.path_buckets(leaf):
            if (self._buckets[bucket_idx].reads_since_shuffle
                    >= self.params.dummies):
                self._reshuffle(bucket_idx)

        # Scheduled eviction path.
        if self._access_count % self.params.evict_rate == 0:
            self._evict_path()
        return data

    def _slot_of(self, bucket: _Bucket, block_id: int) -> Optional[int]:
        for slot, entry in enumerate(bucket.blocks):
            if entry is not _EMPTY and entry[0] == block_id:
                return slot
        return None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _reshuffle(self, bucket_idx: int) -> None:
        """Read a bucket's survivors, rewrite it fresh (early reshuffle)."""
        bucket = self._buckets[bucket_idx]
        level = self.geometry.level_of(bucket_idx)
        survivors = [e for e in bucket.blocks if e is not _EMPTY]
        self.blocks_read += len(survivors)
        for block_id, leaf, data in survivors:
            self.stash.put(block_id, leaf, data)
        self._write_bucket(bucket_idx, level)

    def _evict_path(self) -> None:
        """Read and rewrite one full path in reverse-lexicographic order."""
        leaf = self._reverse_lex_leaf(self._evict_counter)
        self._evict_counter += 1
        path = self.geometry.path_buckets(leaf)
        for bucket_idx in path:
            bucket = self._buckets[bucket_idx]
            survivors = [e for e in bucket.blocks if e is not _EMPTY]
            self.blocks_read += len(survivors)
            for block_id, block_leaf, data in survivors:
                self.stash.put(block_id, block_leaf, data)
            bucket.blocks = [_EMPTY] * self.params.slots
        # Greedy write-back leaf -> root, exactly as Path ORAM.
        placed = set()
        for level in range(self.geometry.leaf_level, -1, -1):
            bucket_idx = path[level]
            candidates = sorted(
                block_id
                for block_id, block_leaf, _ in self.stash.items()
                if block_id not in placed
                and self.geometry.on_same_path(block_leaf, leaf, level)
            )
            chosen = candidates[: self.params.bucket_real]
            placed.update(chosen)
            bucket = self._buckets[bucket_idx]
            fresh: List[Optional[Tuple[int, int, bytes]]] = []
            for block_id in chosen:
                block_leaf, data = self.stash.pop(block_id)
                fresh.append((block_id, block_leaf, data))
            fresh.extend([_EMPTY] * (self.params.slots - len(fresh)))
            self._rng.shuffle(fresh)
            bucket.blocks = fresh
            bucket.reads_since_shuffle = 0
            self.blocks_written += self.params.slots

    def _write_bucket(self, bucket_idx: int, level: int) -> None:
        """Refill one bucket from the stash after an early reshuffle."""
        bucket = self._buckets[bucket_idx]
        candidates = sorted(
            block_id
            for block_id, block_leaf, _ in self.stash.items()
            if self.geometry.bucket_on_path(block_leaf, level) == bucket_idx
        )
        chosen = candidates[: self.params.bucket_real]
        fresh: List[Optional[Tuple[int, int, bytes]]] = []
        for block_id in chosen:
            block_leaf, data = self.stash.pop(block_id)
            fresh.append((block_id, block_leaf, data))
        fresh.extend([_EMPTY] * (self.params.slots - len(fresh)))
        self._rng.shuffle(fresh)
        bucket.blocks = fresh
        bucket.reads_since_shuffle = 0
        self.blocks_written += self.params.slots

    def _reverse_lex_leaf(self, counter: int) -> int:
        """Deterministic eviction order: bit-reversed counter."""
        bits = self.geometry.leaf_level
        value = counter % self.geometry.num_leaves
        result = 0
        for _ in range(bits):
            result = (result << 1) | (value & 1)
            value >>= 1
        return result

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """No duplicates; every tree-resident block on its mapped path."""
        seen: Dict[int, str] = {}
        for bucket_idx in self.geometry.iter_buckets():
            bucket = self._buckets[bucket_idx]
            level = self.geometry.level_of(bucket_idx)
            real = [e for e in bucket.blocks if e is not _EMPTY]
            if len(real) > self.params.slots:
                raise AssertionError("bucket overfull")
            for block_id, leaf, _data in real:
                if block_id in seen:
                    raise AssertionError(f"block {block_id} duplicated")
                seen[block_id] = f"bucket {bucket_idx}"
                if self.geometry.bucket_on_path(leaf, level) != bucket_idx:
                    raise AssertionError(
                        f"block {block_id} off-path in bucket {bucket_idx}"
                    )
        for block_id, _leaf, _data in self.stash.items():
            if block_id in seen:
                raise AssertionError(f"block {block_id} in stash and tree")
