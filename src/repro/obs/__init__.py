"""Observability: structured tracing, exporters, and golden-run digests.

``repro.obs`` is the substrate the regression suite stands on: the
:class:`~repro.obs.tracer.Tracer` collects typed events from every
timing-model layer, :mod:`repro.obs.export` renders them as JSONL or
Chrome ``trace_event`` JSON (Perfetto-loadable) and hashes them into a
stable content digest, :mod:`repro.obs.snapshot` samples StatSets over
time, and :mod:`repro.obs.leakage` checks the secure link's fixed-rate
timing-channel property straight from a trace.

Quick start::

    from repro.obs import Tracer, trace_digest, write_chrome_trace
    from repro.core.schemes import run_scheme

    tracer = Tracer()
    result = run_scheme("doram", "libq", 2000, tracer=tracer)
    print(trace_digest(tracer.events))
    write_chrome_trace(tracer.events, "doram.trace.json")

or from the shell: ``doram trace doram --out doram.trace.json``.
"""

from repro.obs.export import (
    canonical_line,
    chrome_trace,
    render_jsonl,
    trace_digest,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.leakage import check_fixed_rate, secure_link_packets
from repro.obs.snapshot import StatsSampler
from repro.obs.tracer import (
    ALL_CATEGORIES,
    DEFAULT_CATEGORIES,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "ALL_CATEGORIES",
    "DEFAULT_CATEGORIES",
    "NULL_TRACER",
    "NullTracer",
    "StatsSampler",
    "TraceEvent",
    "Tracer",
    "canonical_line",
    "check_fixed_rate",
    "chrome_trace",
    "render_jsonl",
    "secure_link_packets",
    "trace_digest",
    "write_chrome_trace",
    "write_jsonl",
]
