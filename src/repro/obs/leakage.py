"""Timing-channel checks on the CPU <-> SD secure link (Section III-B).

D-ORAM's security argument for the serial link is that its observable
packet stream is a deterministic function of the response stream: every
packet is exactly 72 B, and request ``k+1`` leaves the processor exactly
``t`` CPU cycles after response ``k`` was accepted (plus the fixed
CPU-side packet processing time), whether the S-App had a real request
queued or the engine emitted a dummy.  Nothing about demand, addresses,
or read/write mix is visible.

:func:`check_fixed_rate` replays that argument against a captured trace:
it extracts the secure channel's raw link packets and returns a list of
violation strings (empty = the property holds).  The regression test
asserts the list is empty for a stock run -- and *non*-empty when the
emission period is deliberately perturbed, proving the check has teeth.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.obs.tracer import TraceEvent
from repro.sim.engine import cpu_cycles, ns


def secure_link_packets(
    events: Sequence[TraceEvent], secure_channel: int = 0
) -> Tuple[List[TraceEvent], List[TraceEvent]]:
    """Raw secure-engine packets on the secure channel's two links.

    Returns ``(down, up)`` in wire order.  Only ``raw``-tagged packets are
    the ORAM request/response protocol; normal-traffic packets (NS-Apps
    sharing the secure channel) and split-tree ``remote`` messages ride
    the same links but are framed differently and are excluded.
    """
    down_track = f"bob{secure_channel}.down"
    up_track = f"bob{secure_channel}.up"
    down = [
        e for e in events
        if e.cat == "link" and e.name == "raw" and e.track == down_track
    ]
    up = [
        e for e in events
        if e.cat == "link" and e.name == "raw" and e.track == up_track
    ]
    return down, up


def check_fixed_rate(
    events: Sequence[TraceEvent],
    secure_channel: int = 0,
    t_cycles: int = 50,
    cpu_process_ns: float = 2.0,
    packet_bytes: Optional[int] = None,
) -> List[str]:
    """Verify the fixed-rate / fixed-size secure-link property.

    Checks, against the trace of one run:

    1. every request packet (down) and response packet (up) is exactly
       ``packet_bytes`` long;
    2. request ``k+1`` leaves exactly ``cpu_cycles(t_cycles) +
       ns(cpu_process_ns)`` ticks after response ``k`` arrived at the
       processor (the pacer's deterministic emission rule);
    3. requests and responses strictly alternate (one outstanding).

    Returns human-readable violation strings; empty means the property
    holds for every packet in the trace.
    """
    if packet_bytes is None:
        # The import is deferred so that ``repro.obs`` stays importable
        # from any layer (repro.core itself imports repro.obs.tracer).
        from repro.core.config import PACKET_BYTES
        packet_bytes = PACKET_BYTES

    down, up = secure_link_packets(events, secure_channel)
    violations: List[str] = []
    if not down:
        return [f"no secure-engine packets on bob{secure_channel}.down"]

    for i, event in enumerate(down):
        nbytes = event.args.get("bytes")
        if nbytes != packet_bytes:
            violations.append(
                f"request {i}: {nbytes} B on the wire, expected "
                f"{packet_bytes} B"
            )
    for i, event in enumerate(up):
        nbytes = event.args.get("bytes")
        if nbytes != packet_bytes:
            violations.append(
                f"response {i}: {nbytes} B on the wire, expected "
                f"{packet_bytes} B"
            )

    if not len(up) <= len(down) <= len(up) + 1:
        violations.append(
            f"request/response counts do not alternate: "
            f"{len(down)} requests vs {len(up)} responses"
        )

    expected_gap = cpu_cycles(t_cycles) + ns(cpu_process_ns)
    pairs = min(len(up), len(down) - 1)
    for i in range(pairs):
        response_arrival = up[i].args["arrive"]
        next_request = down[i + 1].args["sent"]
        gap = next_request - response_arrival
        if gap != expected_gap:
            violations.append(
                f"request {i + 1} left {gap} ticks after response {i} "
                f"arrived; the fixed rate requires exactly {expected_gap} "
                f"(t={t_cycles} cycles + {cpu_process_ns} ns processing)"
            )
    return violations


def check_recovery_discipline(
    events: Sequence[TraceEvent],
    secure_channel: int = 0,
    t_cycles: int = 50,
    cpu_process_ns: float = 2.0,
    deadline_ns: float = 5000.0,
    packet_bytes: Optional[int] = None,
) -> List[str]:
    """The fixed-rate argument extended to the recovery protocol.

    With retransmission armed (:mod:`repro.core.recovery`) the strict
    alternation of :func:`check_fixed_rate` no longer holds -- a dropped
    response leaves a request unanswered, and a retransmission re-uses
    the slot a dummy would have occupied.  What *must* still hold for
    the link to leak nothing beyond the observable wire itself:

    1. every raw packet in either direction is exactly ``packet_bytes``;
    2. every request's send time is a deterministic function of
       observable wire events: ``sent == 0`` (the initial emission),
       ``sent == some up-packet arrival + (cpu_process + t)`` (the
       pacer's slot after any response/NAK/garbled frame), or ``sent ==
       some earlier request's send + deadline`` (the deadline
       retransmission rule).

    The stream falling silent (after a failover to the host-side
    engine) is allowed -- silence follows ``watchdog_misses`` deadline
    slots, itself a wire-deterministic event.  Returns violation
    strings; empty means the discipline holds.
    """
    if packet_bytes is None:
        from repro.core.config import PACKET_BYTES
        packet_bytes = PACKET_BYTES

    down, up = secure_link_packets(events, secure_channel)
    violations: List[str] = []
    if not down:
        return [f"no secure-engine packets on bob{secure_channel}.down"]

    for label, stream in (("request", down), ("response", up)):
        for i, event in enumerate(stream):
            nbytes = event.args.get("bytes")
            if nbytes != packet_bytes:
                violations.append(
                    f"{label} {i}: {nbytes} B on the wire, expected "
                    f"{packet_bytes} B"
                )

    slot_gap = cpu_cycles(t_cycles) + ns(cpu_process_ns)
    deadline_ticks = ns(deadline_ns)
    slot_times = {e.args["arrive"] + slot_gap for e in up}
    sent_times = [e.args["sent"] for e in down]
    deadline_times = {sent + deadline_ticks for sent in sent_times}
    for i, sent in enumerate(sent_times):
        if sent == 0 or sent in slot_times or sent in deadline_times:
            continue
        violations.append(
            f"request {i} sent at {sent}: not the initial emission, not "
            f"an up-arrival + {slot_gap} slot, and not a prior send + "
            f"{deadline_ticks} deadline -- the send schedule is not a "
            f"function of the observable wire"
        )
    return violations
