"""Trace exporters and the golden-run content digest.

Three consumers, three forms:

* **JSONL** (:func:`write_jsonl`) -- one canonical JSON object per line,
  greppable and diffable; the regression suite's native format.
* **Chrome trace_event** (:func:`chrome_trace`, :func:`write_chrome_trace`)
  -- loadable in ``chrome://tracing`` or https://ui.perfetto.dev: each
  component becomes a named thread lane, ORAM phases and DRAM bursts
  render as duration slices, snapshots as counter tracks.
* **Digest** (:func:`trace_digest`) -- sha256 over the canonical JSONL
  stream.  Because event payloads are pure simulator state (integer
  ticks, deterministic floats) the digest is bit-identical across runs,
  processes, and Python versions for the same configuration, which makes
  it a one-line regression oracle: any scheduling change -- even one that
  preserves aggregate means -- changes the digest.
"""

from __future__ import annotations

import hashlib
import io
import json
from typing import Dict, Iterable, List, Sequence

from repro.obs.tracer import PH_COMPLETE, PH_COUNTER, TraceEvent
from repro.sim.engine import TICKS_PER_NS

#: Microseconds per engine tick (Chrome trace timestamps are in us).
_US_PER_TICK = 1.0 / (TICKS_PER_NS * 1000.0)


def event_dict(event: TraceEvent) -> Dict[str, object]:
    """Canonical flat-dict form of one event."""
    return {
        "ts": event.ts,
        "cat": event.cat,
        "name": event.name,
        "track": event.track,
        "ph": event.ph,
        "dur": event.dur,
        "args": event.args,
    }


def canonical_line(event: TraceEvent) -> str:
    """Canonical JSON encoding: sorted keys, no whitespace."""
    return json.dumps(
        event_dict(event), sort_keys=True, separators=(",", ":")
    )


def canonical_lines(events: Iterable[TraceEvent]) -> Iterable[str]:
    for event in events:
        yield canonical_line(event)


def trace_digest(events: Iterable[TraceEvent]) -> str:
    """sha256 hexdigest over the canonical JSONL stream."""
    h = hashlib.sha256()
    for line in canonical_lines(events):
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def write_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Write the canonical JSONL stream; returns the event count."""
    count = 0
    with open(path, "w") as fp:
        for line in canonical_lines(events):
            fp.write(line)
            fp.write("\n")
            count += 1
    return count


# ---------------------------------------------------------------------------
# Chrome trace_event format
# ---------------------------------------------------------------------------


def chrome_trace(
    events: Sequence[TraceEvent], process_name: str = "repro"
) -> Dict[str, object]:
    """Convert events to a Chrome ``trace_event`` JSON object.

    Ticks become microseconds.  Each distinct ``track`` is mapped to a
    thread id (in order of first appearance) and named via ``thread_name``
    metadata so Perfetto shows component names, not bare tids.
    """
    tids: Dict[str, int] = {}
    trace_events: List[Dict[str, object]] = [
        {
            "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for event in events:
        tid = tids.get(event.track)
        if tid is None:
            tid = len(tids) + 1
            tids[event.track] = tid
            trace_events.append({
                "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
                "args": {"name": event.track},
            })
        entry: Dict[str, object] = {
            "ph": event.ph,
            "pid": 1,
            "tid": tid,
            "cat": event.cat,
            "name": event.name,
            "ts": event.ts * _US_PER_TICK,
            "args": event.args,
        }
        if event.ph == PH_COMPLETE:
            entry["dur"] = event.dur * _US_PER_TICK
        elif event.ph == PH_COUNTER:
            # Counter series values live directly in args.
            pass
        else:
            entry["s"] = "t"  # thread-scoped instant
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ns"}


def write_chrome_trace(
    events: Sequence[TraceEvent], path: str, process_name: str = "repro"
) -> int:
    """Write the Chrome trace JSON; returns the exported event count."""
    doc = chrome_trace(events, process_name)
    with open(path, "w") as fp:
        json.dump(doc, fp)
    return len(events)


def render_jsonl(events: Iterable[TraceEvent]) -> str:
    """The canonical JSONL stream as one string (tests, small traces)."""
    out = io.StringIO()
    for line in canonical_lines(events):
        out.write(line)
        out.write("\n")
    return out.getvalue()
