"""Golden-trace fixtures: fixed configs whose trace digests are pinned.

A golden run is one scheme simulated at a small fixed workload
(``libq`` @ :data:`GOLDEN_TRACE_LENGTH` accesses, default seed) with the
default trace categories.  Its digest captures the complete event-level
timing behaviour -- DRAM command order, link packet times, ORAM phase
boundaries -- so a cross-PR regression that preserves aggregate means but
reorders events still flips the digest and fails the suite loudly.

When a timing change is *intentional*, regenerate the committed digests
with ``python tools/regen_goldens.py`` and include the updated
``tests/obs/golden_digests.json`` in the same commit, explaining the
change in its message (see README "Observability").
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.obs.export import trace_digest
from repro.obs.tracer import Tracer

#: Schemes pinned by the golden suite: the on-chip baseline, stock
#: D-ORAM, the closed secure channel (D-ORAM/0), and one split level.
GOLDEN_SCHEMES: Tuple[str, ...] = ("baseline", "doram", "doram/0", "doram+1")

GOLDEN_BENCHMARK = "libq"
GOLDEN_TRACE_LENGTH = 300


def run_traced(
    scheme: str,
    benchmark: str = GOLDEN_BENCHMARK,
    trace_length: int = GOLDEN_TRACE_LENGTH,
    categories: Optional[Iterable[str]] = None,
    **overrides,
):
    """Run one scheme with tracing on; returns ``(result, tracer)``."""
    from repro.core.schemes import run_scheme

    tracer = Tracer(categories)
    result = run_scheme(
        scheme, benchmark, trace_length, tracer=tracer, **overrides
    )
    return result, tracer


def golden_digest(scheme: str) -> str:
    """The trace digest of one golden run."""
    _result, tracer = run_traced(scheme)
    return trace_digest(tracer.events)


def compute_golden_digests(
    schemes: Iterable[str] = GOLDEN_SCHEMES,
) -> Dict[str, str]:
    """Digest every golden scheme (used by ``tools/regen_goldens.py``)."""
    return {scheme: golden_digest(scheme) for scheme in schemes}
