"""Periodic StatSet sampling: latency/occupancy over time, not just at end.

``build_and_run`` attaches a :class:`StatsSampler` when asked: every
``interval`` ticks it polls each registered source (a callable returning
``{series: number}``), stores the row for post-run plotting
(:attr:`StatsSampler.rows`, surfaced as ``SimResult.snapshots``), and
emits Chrome counter events into the tracer so the same series render as
counter tracks above the event lanes in Perfetto.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Union

from repro.obs.tracer import NULL_TRACER
from repro.sim.engine import Engine

Number = Union[int, float]
Source = Callable[[], Dict[str, Number]]


class StatsSampler:
    """Samples registered stat sources on a fixed tick interval.

    The sampler keeps rescheduling itself while the simulation runs;
    ``build_and_run`` always ends a run via ``engine.stop()``, which
    leaves at most one pending (never-fired) sample event behind.
    """

    def __init__(self, engine: Engine, interval: int, tracer=None) -> None:
        if interval <= 0:
            raise ValueError("snapshot interval must be positive ticks")
        self.engine = engine
        self.interval = interval
        self.tracer = (tracer if tracer is not None else NULL_TRACER).category(
            "stats"
        )
        self._sources: List[Tuple[str, Source]] = []
        #: One row per sample: {"ts": tick, track: {series: value}, ...}.
        self.rows: List[Dict[str, object]] = []
        self._started = False

    def add_source(self, track: str, source: Source) -> None:
        """Register one component; ``source()`` returns its series."""
        self._sources.append((track, source))

    def start(self) -> None:
        """Take the first sample now and re-arm every ``interval`` ticks."""
        if self._started or not self._sources:
            return
        self._started = True
        self.engine.at(self.engine.now, self._sample)

    # ------------------------------------------------------------------
    def _sample(self) -> None:
        now = self.engine.now
        row: Dict[str, object] = {"ts": now}
        tracer = self.tracer
        for track, source in self._sources:
            values = source()
            row[track] = values
            if tracer.enabled:
                tracer.counter("stats", "snapshot", track, now, values)
        self.rows.append(row)
        self.engine.after(self.interval, self._sample)

    # ------------------------------------------------------------------
    def series(self, track: str, name: str) -> List[Tuple[int, Number]]:
        """Extract one ``(ts, value)`` series for plotting."""
        out: List[Tuple[int, Number]] = []
        for row in self.rows:
            values = row.get(track)
            if isinstance(values, dict) and name in values:
                out.append((row["ts"], values[name]))
        return out
