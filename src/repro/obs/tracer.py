"""Structured event tracing for the timing models.

Every component that matters to the D-ORAM timing story (engine
dispatch, DRAM command issue, BOB link packets, ORAM path phases, the
secure delegator) can emit typed :class:`TraceEvent` records into a
:class:`Tracer`.  Two design rules keep this honest:

* **Zero overhead when disabled.**  Components hold a tracer reference
  obtained via :meth:`Tracer.category`; when tracing is off (or the
  component's category is filtered out) that reference is the shared
  :data:`NULL_TRACER`, whose ``enabled`` attribute is ``False``.  Hot
  paths guard every emission with ``if tracer.enabled:`` so the disabled
  cost is one attribute load and a branch -- no event objects, no string
  formatting.

* **Determinism.**  Event timestamps are engine ticks (integers), event
  payloads contain only ints, strings, and floats derived from simulator
  state, and events are appended in emission order, which the
  deterministic engine makes reproducible.  Two runs of the same
  configuration therefore produce byte-identical canonical traces --
  the property the golden-trace regression suite pins down (see
  :mod:`repro.obs.export` for the canonical form and digest).

Categories
----------
``engine``  event-loop dispatch (very high volume; off by default)
``dram``    DRAM command issue / scheduler decisions
``link``    serial-link packet send/receive
``oram``    ORAM frontend emission + path read/writeback phases
``sd``      secure-delegator state transitions and remote messages
``fault``   fault injections and recovery actions (``repro.faults``)
``stats``   periodic :class:`~repro.sim.stats.StatSet` snapshots
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

Number = Union[int, float]

#: Every category a component may emit into.
ALL_CATEGORIES = frozenset(
    {"engine", "dram", "link", "oram", "sd", "fault", "stats"}
)

#: Default capture set: everything except per-dispatch engine events,
#: which dwarf the rest of the trace (one event per simulator callback).
DEFAULT_CATEGORIES = frozenset(
    {"dram", "link", "oram", "sd", "fault", "stats"}
)

#: Chrome trace_event phase codes used here: instant, complete, counter.
PH_INSTANT = "i"
PH_COMPLETE = "X"
PH_COUNTER = "C"


class TraceEvent:
    """One typed trace record.

    ``ts`` and ``dur`` are engine ticks.  ``track`` names the emitting
    component (it becomes the thread lane in the Chrome export).
    ``args`` is a flat dict of ints/floats/strings.
    """

    __slots__ = ("ts", "cat", "name", "track", "ph", "dur", "args")

    def __init__(
        self,
        ts: int,
        cat: str,
        name: str,
        track: str,
        ph: str = PH_INSTANT,
        dur: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.ts = ts
        self.cat = cat
        self.name = name
        self.track = track
        self.ph = ph
        self.dur = dur
        self.args = args if args is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceEvent({self.ts}, {self.cat}.{self.name}@{self.track}, "
            f"ph={self.ph}, dur={self.dur}, args={self.args})"
        )


class NullTracer:
    """The disabled tracer: every emission is a no-op.

    A single shared instance (:data:`NULL_TRACER`) stands in wherever a
    real tracer was not supplied, so components never need ``if tracer
    is not None`` checks -- only the cheap ``tracer.enabled`` guard.
    """

    enabled = False

    def category(self, cat: str) -> "NullTracer":
        return self

    def wants(self, cat: str) -> bool:
        return False

    def instant(self, cat, name, track, ts, args=None) -> None:
        pass

    def complete(self, cat, name, track, ts, dur, args=None) -> None:
        pass

    def complete_series(self, cat, name, track, first_ts, period, count,
                        dur, args=None) -> None:
        pass

    def counter(self, cat, name, track, ts, values) -> None:
        pass


#: Shared do-nothing tracer (see :class:`NullTracer`).
NULL_TRACER = NullTracer()


class Tracer:
    """Collects :class:`TraceEvent` records from instrumented components.

    Parameters
    ----------
    categories:
        Iterable of category names to capture; ``None`` selects
        :data:`DEFAULT_CATEGORIES`.  Pass :data:`ALL_CATEGORIES` (or
        include ``"engine"``) to also capture per-dispatch engine events.
    """

    enabled = True

    def __init__(self, categories: Optional[Iterable[str]] = None) -> None:
        if categories is None:
            self.categories = DEFAULT_CATEGORIES
        else:
            cats = frozenset(categories)
            unknown = cats - ALL_CATEGORIES
            if unknown:
                raise ValueError(
                    f"unknown trace categories {sorted(unknown)}; "
                    f"valid: {sorted(ALL_CATEGORIES)}"
                )
            self.categories = cats
        self.events: List[TraceEvent] = []

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------
    def wants(self, cat: str) -> bool:
        return cat in self.categories

    def category(self, cat: str):
        """The tracer a component should hold for category ``cat``.

        Returns ``self`` when the category is captured, otherwise
        :data:`NULL_TRACER` -- so a filtered-out component pays the same
        near-zero cost as a fully disabled run.
        """
        return self if cat in self.categories else NULL_TRACER

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def instant(
        self,
        cat: str,
        name: str,
        track: str,
        ts: int,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """A point-in-time event (Chrome phase ``i``)."""
        self.events.append(TraceEvent(ts, cat, name, track, PH_INSTANT, 0, args))

    def complete(
        self,
        cat: str,
        name: str,
        track: str,
        ts: int,
        dur: int,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """A duration event spanning ``[ts, ts + dur]`` (phase ``X``)."""
        self.events.append(
            TraceEvent(ts, cat, name, track, PH_COMPLETE, dur, args)
        )

    def complete_series(
        self,
        cat: str,
        name: str,
        track: str,
        first_ts: int,
        period: int,
        count: int,
        dur: int,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """``count`` duration events at a fixed cadence (phase ``X``).

        The census layer reconstructs periodic occurrences it elided --
        e.g. refresh catch-up windows -- in one call; the emitted records
        are individually identical (same order, same timestamps) to
        ``count`` separate :meth:`complete` calls at
        ``first_ts + i * period``, so the canonical trace and its digest
        cannot tell the difference.
        """
        events = self.events
        ts = first_ts
        for _ in range(count):
            events.append(
                TraceEvent(ts, cat, name, track, PH_COMPLETE, dur, args)
            )
            ts += period

    def counter(
        self,
        cat: str,
        name: str,
        track: str,
        ts: int,
        values: Dict[str, Number],
    ) -> None:
        """A sampled counter series (phase ``C``); ``values`` holds the
        series values at ``ts`` -- e.g. queue depth, utilization."""
        self.events.append(
            TraceEvent(ts, cat, name, track, PH_COUNTER, 0, dict(values))
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()


def coerce(tracer: Optional[Union[Tracer, NullTracer]]):
    """Normalize an optional tracer argument to a usable instance."""
    return tracer if tracer is not None else NULL_TRACER
