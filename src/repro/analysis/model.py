"""Closed-form queueing approximation of the D-ORAM pipeline.

The DES answers "what exactly happens" in minutes per point; design
sweeps need "roughly where does this configuration land" in
microseconds per point.  This module prices a :class:`SystemConfig`
analytically -- no engine, no trace -- predicting the two axes every
D-ORAM trade-off plot uses:

* **NS-App mean read latency** (interference felt by the normal
  applications), and
* **S-App ORAM goodput** (protected accesses retired per second).

The structure follows the pipeline the simulator implements
(Sections III-B/III-C of the paper):

1. the **pacer** emits one secure access every ``t_cycles`` CPU cycles
   (real or dummy -- the fixed rate is the timing-channel defence), so
   the offered ORAM rate is ``1 / (t_cycles * CPU_CYCLE_TICKS)`` per
   tick;
2. each access moves ``2 * levels_fetched * Z`` blocks (read + write
   phase) as 72 B packets over the serial **link** -- per-direction
   serialization is ``PACKET_BYTES / bytes_per_ns``;
3. the **delegator (SD)** spends ``sd_process_ns`` per packet;
4. the secure channel's **FR-FCFS sub-channels** service the blocks:
   the subtree layout makes intra-path accesses row-friendly, so a
   path costs its data bursts plus one activate/precharge per subtree
   row, spread over ``secure_subchannels`` sub-channels (and, under
   the preallocation policy, only ``secure_share`` of that capacity);
5. **D-ORAM+k** relocates ``k`` levels' blocks to the ``num_channels-1``
   normal channels (short read packets), and **D-ORAM/c** lets ``c``
   NS-Apps interleave across the secure channel too.

Each stage yields a per-access busy time; the slowest is the pipeline
service time ``s``.  With deterministic arrivals (the pacer) and
near-deterministic service, waiting follows the M/D/1 form
``W = s * rho / (2 (1 - rho))``, extended past ``rho_max`` by a linear
saturation ramp so the prediction stays finite *and monotone* --
monotonicity (latency non-decreasing in arrival rate; per-tenant
goodput non-increasing in tenants) is the property the explore loop's
frontier triage relies on, and the test suite pins it.

The raw model is a *trend* model: absolute scale is absorbed by a
per-family linear calibration (``sim ~= a * pred + b``, least squares
over a handful of simulated anchor points; family = architecture +
placement + split depth).  :class:`CalibratedModel` carries those
coefficients; ``doram explore`` fits them from its anchor runs and
records the residual model-vs-sim error in ``BENCH_explore.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import PACKET_BYTES, SHORT_PACKET_BYTES, SystemConfig
from repro.sim.engine import CPU_CYCLE_TICKS, TICKS_PER_NS, ns
from repro.trace.benchmarks import benchmark_by_code

#: Utilization where the closed-form wait hands over to the linear
#: saturation ramp.  Past this point the M/D/1 form is numerically
#: explosive and the DES itself is backlog-dominated; the ramp keeps
#: predictions finite, ordered, and strictly increasing in load.
RHO_MAX = 0.96

#: Slope of the saturation ramp, in multiples of the service time per
#: unit of excess utilization.  Chosen steep enough that saturated
#: configs always rank behind unsaturated ones.
SAT_SLOPE = 50.0

TICKS_PER_S = TICKS_PER_NS * 1e9


def _mdl_wait(service: float, rho: float) -> float:
    """M/D/1 mean wait with the monotone saturation extension."""
    if service <= 0.0 or rho <= 0.0:
        return 0.0
    if rho < RHO_MAX:
        return service * rho / (2.0 * (1.0 - rho))
    knee = service * RHO_MAX / (2.0 * (1.0 - RHO_MAX))
    return knee + (rho - RHO_MAX) * SAT_SLOPE * service


@dataclass(frozen=True)
class Prediction:
    """One configuration priced analytically."""

    #: Mean NS-App read latency, microseconds.
    ns_latency_us: float
    #: S-App ORAM accesses retired per second (aggregate).
    goodput_rps: float
    #: Per-tenant goodput when ``tenants`` S-Apps share the delegator.
    goodput_per_tenant_rps: float
    #: Pipeline utilization of the secure path's bottleneck stage.
    secure_util: float
    #: Highest NS-visible channel utilization.
    ns_util: float
    #: Which stage bounds the secure pipeline: link / sd / dram.
    bottleneck: str
    #: Per-stage busy times (ticks per ORAM access), for reports.
    components: Dict[str, float] = field(default_factory=dict)


class DoramModel:
    """White-box trend model of the simulated machine.

    All internal arithmetic is in engine ticks (so the constants are
    shared verbatim with the DES); conversions to microseconds and
    requests/second happen at the edges.
    """

    def __init__(self, rho_max: float = RHO_MAX) -> None:
        self.rho_max = rho_max

    # -- family key for calibration -------------------------------------
    @staticmethod
    def family(config: SystemConfig) -> str:
        """Calibration family: machines that share linear error scale.

        Architecture + delegation placement + split depth: the split
        moves traffic between channel classes, which changes the slope
        of model error, while ``c``/``t`` sweeps within a family move
        along it.
        """
        return (
            f"{config.arch}-{config.protection}-"
            f"{config.oram_placement}-k{config.split_k}"
        )

    # -- secure-pipeline pricing ----------------------------------------
    def secure_stage_busy(self, config: SystemConfig) -> Dict[str, float]:
        """Per-ORAM-access busy time (ticks) of each pipeline stage."""
        if not config.has_s_app or config.protection != "path":
            return {"link": 0.0, "sd": 0.0, "dram": 0.0, "remote": 0.0}
        oram = config.effective_oram()
        levels_local = max(oram.levels_fetched - config.split_k, 1)
        blocks_local = 2 * levels_local * oram.bucket_size
        blocks_remote = 2 * config.split_k * oram.bucket_size

        if config.oram_placement == "delegated":
            ser = PACKET_BYTES / config.link_params.bytes_per_ns \
                * TICKS_PER_NS
            link = blocks_local * ser
            sd = (blocks_local + blocks_remote) * ns(config.sd_process_ns)
        else:
            link = 0.0
            sd = 0.0

        timing = config.dram_timing
        # Subtree packing: one activate/precharge pair per subtree row
        # touched, data bursts for every block; banks across the
        # sub-channels overlap the activates.
        rows = max(1.0, levels_local / max(oram.subtree_levels, 1))
        act = rows * (timing.tRCD + timing.tRP) \
            / config.channel_params.num_banks
        subchannels = (
            config.secure_subchannels if config.arch == "bob"
            else config.num_channels
        )
        dram = (blocks_local * timing.tBURST + act) / max(subchannels, 1)
        # The preallocation policy reserves only ``secure_share`` of the
        # shared channel for the secure class once NS-Apps land on it.
        if self._ns_apps_on_secure(config) > 0:
            dram /= config.secure_share

        remote = 0.0
        if blocks_remote:
            normal_channels = max(config.num_channels - 1, 1)
            remote_ser = SHORT_PACKET_BYTES / config.link_params.bytes_per_ns \
                * TICKS_PER_NS
            remote = blocks_remote * (
                timing.tBURST + remote_ser
            ) / normal_channels
        return {"link": link, "sd": sd, "dram": dram, "remote": remote}

    def _ns_apps_on_secure(self, config: SystemConfig) -> int:
        base = config.ns_channels or tuple(range(config.num_channels))
        if config.secure_channel not in base:
            return 0
        if config.c_limit is None:
            return config.num_ns_apps
        return config.c_limit

    def arrival_period_ticks(self, config: SystemConfig) -> float:
        """Pacer period: one secure access per ``t_cycles`` CPU cycles."""
        return float(config.t_cycles * CPU_CYCLE_TICKS)

    def secure_service_ticks(self, config: SystemConfig) -> Tuple[str, float]:
        """Bottleneck stage name and its per-access busy time."""
        busy = self.secure_stage_busy(config)
        dram_total = busy["dram"] + busy["remote"]
        stages = [("link", busy["link"]), ("sd", busy["sd"]),
                  ("dram", dram_total)]
        name, value = max(stages, key=lambda item: item[1])
        return name, value

    # -- goodput ----------------------------------------------------------
    def goodput_rps(self, config: SystemConfig) -> float:
        """Aggregate S-App ORAM accesses per second.

        The pacer offers ``1/T`` accesses per tick; the pipeline
        sustains ``1/s``.  Goodput is the smaller of the two -- the
        pacer never overruns a saturated delegator, it stalls.
        """
        if not config.has_s_app or config.protection != "path":
            return 0.0
        period = self.arrival_period_ticks(config)
        _, service = self.secure_service_ticks(config)
        sustained = 1.0 / max(period, service)
        return sustained * TICKS_PER_S

    def goodput_per_tenant_rps(self, config: SystemConfig,
                               tenants: Optional[int] = None) -> float:
        """Per-tenant goodput when ``tenants`` S-Apps share the SD.

        Each tenant paces independently, but the delegator pipeline is
        one shared resource: per-tenant throughput is the solo rate
        until the shared capacity ``1/s`` splits thinner than that --
        ``min(solo, capacity / tenants)``, non-increasing in
        ``tenants`` by construction.
        """
        if tenants is None:
            tenants = config.num_s_apps
        if tenants < 1:
            raise ValueError("tenants must be >= 1")
        solo = self.goodput_rps(config)
        _, service = self.secure_service_ticks(config)
        if service <= 0.0:
            return solo
        capacity = TICKS_PER_S / service
        return min(solo, capacity / tenants)

    # -- NS-App latency ----------------------------------------------------
    def _ns_demand_per_tick(self, config: SystemConfig) -> float:
        """One NS-App's offered read rate (misses per tick)."""
        spec = benchmark_by_code(config.benchmark)
        return spec.mpki / 1000.0 / CPU_CYCLE_TICKS

    def _channel_populations(
        self, config: SystemConfig
    ) -> List[Tuple[int, float]]:
        """(channel, NS-app-equivalents) pairs under the c-limit split.

        Apps interleave uniformly across their allowed channels, so an
        app allowed on ``m`` channels contributes ``1/m`` of its demand
        to each.
        """
        base = config.ns_channels or tuple(range(config.num_channels))
        loads = {ch: 0.0 for ch in base}
        n = config.num_ns_apps
        if (config.c_limit is None
                or config.secure_channel not in base):
            for ch in base:
                loads[ch] += n / len(base)
        else:
            c = config.c_limit
            normal = [ch for ch in base if ch != config.secure_channel]
            for ch in base:
                loads[ch] += c / len(base)
            for ch in normal:
                loads[ch] += (n - c) / len(normal)
        return sorted(loads.items())

    def ns_latency_us(self, config: SystemConfig,
                      rate_scale: float = 1.0) -> float:
        """Mean NS-App read latency (us); ``rate_scale`` scales the
        per-app offered rate (the monotonicity hook)."""
        if config.num_ns_apps == 0:
            return 0.0
        if rate_scale < 0.0:
            raise ValueError("rate_scale must be >= 0")
        timing = config.dram_timing
        spec = benchmark_by_code(config.benchmark)
        # Row-hit odds track streaming-ness; misses pay the full
        # precharge + activate path.
        hit = spec.stream_prob
        service = timing.tBURST + (1.0 - hit) * (
            timing.tRP + timing.tRCD
        ) / config.channel_params.num_banks
        base_latency = (
            hit * timing.row_hit_latency
            + (1.0 - hit) * timing.row_closed_latency
        )
        if config.arch == "bob":
            line_ser = config.channel_params.line_bytes \
                / config.link_params.bytes_per_ns * TICKS_PER_NS
            base_latency += 2 * config.link_params.latency + line_ser

        demand = self._ns_demand_per_tick(config) * rate_scale
        busy = self.secure_stage_busy(config)
        # ORAM accesses flow at the *sustained* rate -- the pacer
        # period or, when the pipeline saturates first, its service
        # time -- so remote-block residency on the normal channels is
        # rated against that.
        _, secure_service = self.secure_service_ticks(config)
        effective_period = max(
            self.arrival_period_ticks(config), secure_service, 1.0
        )
        remote_util = busy["remote"] / effective_period

        populations = self._channel_populations(config)
        total_apps = sum(apps for _, apps in populations)
        weighted = 0.0
        for ch, apps in populations:
            if apps <= 0.0:
                continue
            is_secure = (
                ch == config.secure_channel
                and config.arch == "bob"
                and config.has_s_app
                and config.protection == "path"
            )
            subchannels = (
                config.secure_subchannels if is_secure
                else (config.normal_subchannels
                      if config.arch == "bob" else 1)
            )
            capacity = subchannels / service
            if is_secure:
                # The preallocation policy caps the NS class at its
                # share while the secure class is resident.
                capacity *= (1.0 - config.secure_share)
            elif (config.split_k > 0 and config.has_s_app
                  and config.protection == "path"):
                # Split-tree remote blocks occupy a slice of every
                # normal channel; the NS class queues into the rest.
                capacity *= max(1.0 - remote_util, 1e-3)
            rho = apps * demand / capacity
            wait = _mdl_wait(service, rho)
            weighted += apps * (base_latency + wait)
        mean_ticks = weighted / max(total_apps, 1e-12)
        return mean_ticks / TICKS_PER_NS / 1000.0

    # -- the full prediction ----------------------------------------------
    def predict(self, config: SystemConfig,
                tenants: Optional[int] = None) -> Prediction:
        busy = self.secure_stage_busy(config)
        bottleneck, service = self.secure_service_ticks(config)
        period = self.arrival_period_ticks(config)
        secure_util = min(service / period, 1.0) if period else 0.0
        latency_us = self.ns_latency_us(config)
        demand = self._ns_demand_per_tick(config)
        timing = config.dram_timing
        ns_util = 0.0
        for _, apps in self._channel_populations(config):
            ns_util = max(ns_util, apps * demand * timing.tBURST)
        return Prediction(
            ns_latency_us=latency_us,
            goodput_rps=self.goodput_rps(config),
            goodput_per_tenant_rps=self.goodput_per_tenant_rps(
                config, tenants
            ),
            secure_util=secure_util,
            ns_util=min(ns_util, 1.0),
            bottleneck=bottleneck,
            components=busy,
        )


# ---------------------------------------------------------------------------
# Per-family calibration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FamilyFit:
    """``sim ~= a * pred + b`` for one (family, metric) pair."""

    a: float
    b: float
    #: Anchor count behind the fit (1 point -> offset-only fit).
    points: int

    def apply(self, pred: float) -> float:
        return self.a * pred + self.b


def _least_squares(pairs: Sequence[Tuple[float, float]]) -> FamilyFit:
    """Ordinary least squares of sim on pred, slope forced positive.

    A non-positive slope would break the model's monotone ordering (the
    property explore's triage depends on), so degenerate fits fall back
    to a pure offset: ``a = 1, b = mean(sim - pred)``.
    """
    n = len(pairs)
    if n == 0:
        raise ValueError("cannot fit a family with no anchors")
    mean_x = sum(p for p, _ in pairs) / n
    mean_y = sum(s for _, s in pairs) / n
    if n == 1:
        return FamilyFit(a=1.0, b=mean_y - mean_x, points=1)
    var = sum((p - mean_x) ** 2 for p, _ in pairs)
    cov = sum((p - mean_x) * (s - mean_y) for p, s in pairs)
    if var <= 0.0 or cov <= 0.0:
        return FamilyFit(a=1.0, b=mean_y - mean_x, points=n)
    a = cov / var
    return FamilyFit(a=a, b=mean_y - a * mean_x, points=n)


@dataclass
class CalibratedModel:
    """A :class:`DoramModel` wearing per-family linear corrections.

    Families without anchors fall back to the global fit (all anchors
    pooled), and with no anchors at all the raw model passes through.
    """

    model: DoramModel
    #: family -> metric -> fit; ``"*"`` holds the pooled fallback.
    fits: Dict[str, Dict[str, FamilyFit]] = field(default_factory=dict)

    def _fit(self, family: str, metric: str) -> Optional[FamilyFit]:
        for key in (family, "*"):
            fit = self.fits.get(key, {}).get(metric)
            if fit is not None:
                return fit
        return None

    def predict(self, config: SystemConfig,
                tenants: Optional[int] = None) -> Prediction:
        raw = self.model.predict(config, tenants)
        family = self.model.family(config)
        lat_fit = self._fit(family, "latency_us")
        good_fit = self._fit(family, "goodput_rps")
        latency = raw.ns_latency_us
        goodput = raw.goodput_rps
        per_tenant = raw.goodput_per_tenant_rps
        if lat_fit is not None:
            latency = max(lat_fit.apply(latency), 0.0)
        if good_fit is not None:
            scale = (
                good_fit.apply(goodput) / goodput if goodput > 0.0 else 1.0
            )
            goodput = max(good_fit.apply(goodput), 0.0)
            per_tenant = max(per_tenant * scale, 0.0)
        return Prediction(
            ns_latency_us=latency,
            goodput_rps=goodput,
            goodput_per_tenant_rps=per_tenant,
            secure_util=raw.secure_util,
            ns_util=raw.ns_util,
            bottleneck=raw.bottleneck,
            components=raw.components,
        )


def fit_families(
    model: DoramModel,
    anchors: Sequence[Tuple[SystemConfig, float, float]],
) -> CalibratedModel:
    """Calibrate from ``(config, sim_latency_us, sim_goodput_rps)``
    anchor measurements.

    Deterministic: anchors are grouped by family and fitted with plain
    least squares -- same anchors (in any order) give bit-identical
    coefficients, which the test suite pins.
    """
    by_family: Dict[str, List[Tuple[float, float, float, float]]] = {}
    pooled: List[Tuple[float, float, float, float]] = []
    for config, sim_lat, sim_good in anchors:
        raw = model.predict(config)
        row = (raw.ns_latency_us, sim_lat, raw.goodput_rps, sim_good)
        by_family.setdefault(model.family(config), []).append(row)
        pooled.append(row)
    fits: Dict[str, Dict[str, FamilyFit]] = {}
    for family in sorted(by_family):
        rows = sorted(by_family[family])
        fits[family] = {
            "latency_us": _least_squares(
                [(r[0], r[1]) for r in rows]
            ),
            "goodput_rps": _least_squares(
                [(r[2], r[3]) for r in rows]
            ),
        }
    if pooled:
        rows = sorted(pooled)
        fits["*"] = {
            "latency_us": _least_squares([(r[0], r[1]) for r in rows]),
            "goodput_rps": _least_squares([(r[2], r[3]) for r in rows]),
        }
    return CalibratedModel(model=model, fits=fits)


def relative_error(predicted: float, measured: float) -> float:
    """|pred - sim| / |sim| with a floor against zero measurements."""
    denom = max(abs(measured), 1e-12)
    return abs(predicted - measured) / denom


def error_summary(errors: Sequence[float]) -> Dict[str, float]:
    """Mean and p95 of a relative-error sample (empty -> zeros)."""
    if not errors:
        return {"mean": 0.0, "p95": 0.0, "max": 0.0, "n": 0}
    ordered = sorted(errors)
    n = len(ordered)
    p95_index = min(n - 1, max(0, math.ceil(0.95 * n) - 1))
    return {
        "mean": sum(ordered) / n,
        "p95": ordered[p95_index],
        "max": ordered[-1],
        "n": n,
    }
