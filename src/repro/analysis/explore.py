"""``doram explore``: analytical triage + selective simulation.

A full design sweep of the D-ORAM configuration space (split depth x
channel sharing x tree size x pacer rate x sub-channel count) is
hundreds of DES points; most of them are nowhere near the
latency/goodput Pareto frontier and simulating them buys nothing.  The
explore loop spends the DES budget only where the analytical model
(:mod:`repro.analysis.model`) says the frontier plausibly lives:

1. **Anchor**: simulate a small, deterministic per-family anchor set
   and fit the per-family linear calibration;
2. **Score**: price every grid point with the calibrated model;
3. **Select**: the predicted Pareto frontier, plus every point within
   the *band* (not dominated by more than ``band_frac`` in both
   metrics), plus a seeded exploration sample of the rest (insurance
   against model blind spots);
4. **Simulate** the selection -- through the distributed work queue
   when ``queue_root``/``workers`` ask for it -- then **refit** and
   repeat until the predicted frontier is fully sim-confirmed, the
   budget (``budget_frac`` of the grid) is spent, or ``max_rounds``
   passes elapse;
5. **Report**: the measured Pareto surface, the model-vs-sim relative
   error on every simulated point (mean/p95 into
   ``BENCH_explore.json``), and the fraction of the grid the DES never
   had to touch.

Every selection rule is deterministic (seeded RNG, sorted iteration,
content-addressed store), so an explore run is exactly reproducible
and resumable: re-running over the same store re-simulates nothing.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.model import (
    CalibratedModel,
    DoramModel,
    error_summary,
    fit_families,
    relative_error,
)
from repro.analysis.sweep import (
    ResultStore,
    RunPoint,
    dedup_points,
    run_sweep,
)
from repro.core.config import SystemConfig
from repro.core.schemes import make_config
from repro.sim.engine import TICKS_PER_NS

TICKS_PER_S = TICKS_PER_NS * 1e9


# ---------------------------------------------------------------------------
# Measured metrics
# ---------------------------------------------------------------------------


def metrics_from_payload(payload: Dict[str, object]) -> Tuple[float, float]:
    """(NS mean read latency us, S-App ORAM goodput rps) of one run."""
    result = payload["result"]
    nsr = result.get("ns_read_latency") or {}
    count = nsr.get("count") or 0
    lat_us = (
        nsr["total"] / count / TICKS_PER_NS / 1000.0 if count else 0.0
    )
    s_app = result.get("s_app") or {}
    end_time = result.get("end_time") or 0
    goodput = (
        s_app.get("oram_accesses", 0) / (end_time / TICKS_PER_S)
        if end_time else 0.0
    )
    return lat_us, goodput


def config_for_point(point: RunPoint) -> SystemConfig:
    """The resolved configuration a run-point simulates."""
    overrides = dict(point.overrides)
    overrides.setdefault("segment", point.segment)
    return make_config(
        point.scheme, point.benchmark, point.trace_length, **overrides
    )


# ---------------------------------------------------------------------------
# Grids
# ---------------------------------------------------------------------------


def build_grid(
    preset: str,
    trace_length: int,
    benchmark: str = "li",
) -> List[RunPoint]:
    """Named configuration grids for ``doram explore``.

    ``smoke``
        4 x 2 x 2 = 16 points (CI-sized): sharing limit, pacer rate,
        tree size.
    ``fig9``
        The paper's Fig. 9/11 scheme set on one benchmark -- the grid
        the pinned model-error test measures against.
    ``full``
        512 points: split depth (0-3) x sharing limit (0-7) x tree
        size x pacer rate x secure sub-channels -- the acceptance
        surface (>= 500 points, DES touches <= ``budget_frac``).
    """
    if preset == "smoke":
        points = [
            RunPoint(
                f"doram/{c}", benchmark, trace_length,
                overrides=(
                    ("oram.leaf_level", level),
                    ("t_cycles", t),
                ),
            )
            for c in (0, 2, 4, 7)
            for t in (50, 200)
            for level in (10, 14)
        ]
    elif preset == "fig9":
        schemes = (
            ["baseline"]
            + [f"doram/{c}" for c in range(7)]
            + ["doram", "doram+1", "doram+1/4"]
        )
        points = [
            RunPoint(scheme, benchmark, trace_length)
            for scheme in schemes
        ]
    elif preset == "full":
        points = [
            RunPoint(
                f"doram+{k}/{c}" if k else f"doram/{c}",
                benchmark, trace_length,
                overrides=(
                    ("oram.leaf_level", level),
                    ("t_cycles", t),
                    ("secure_subchannels", subs),
                ),
            )
            for k in (0, 1, 2, 3)
            for c in range(8)
            for level in (12, 16, 20, 23)
            for t in (50, 200)
            for subs in (2, 4)
        ]
    else:
        raise ValueError(
            f"unknown grid preset {preset!r} (smoke, fig9, full)"
        )
    return dedup_points(points)


GRID_PRESETS = ("smoke", "fig9", "full")


# ---------------------------------------------------------------------------
# Pareto machinery (minimize latency, maximize goodput)
# ---------------------------------------------------------------------------


def pareto_indices(metrics: Sequence[Tuple[float, float]]) -> List[int]:
    """Indices of the non-dominated points of ``(latency, goodput)``
    pairs -- lower latency and higher goodput both better."""
    order = sorted(
        range(len(metrics)),
        key=lambda i: (metrics[i][0], -metrics[i][1]),
    )
    front: List[int] = []
    best_goodput = float("-inf")
    for i in order:
        if metrics[i][1] > best_goodput:
            front.append(i)
            best_goodput = metrics[i][1]
    return sorted(front)


def deeply_dominated(
    metrics: Sequence[Tuple[float, float]],
    index: int,
    band_frac: float,
) -> bool:
    """True when some point beats ``index`` by more than ``band_frac``
    in *both* metrics -- i.e. the point is safely outside the frontier
    band even allowing for model error of that magnitude."""
    lat, good = metrics[index]
    lat_cut = lat / (1.0 + band_frac)
    good_cut = good * (1.0 + band_frac)
    for j, (lat_j, good_j) in enumerate(metrics):
        if j == index:
            continue
        if lat_j <= lat_cut and good_j >= good_cut:
            return True
    return False


# ---------------------------------------------------------------------------
# The explore loop
# ---------------------------------------------------------------------------


@dataclass
class ExploreResult:
    """Everything one explore run learned."""

    grid_points: int
    simulated: int
    budget: int
    budget_frac: float
    rounds: int
    #: Measured Pareto frontier: rows sorted by latency.
    frontier: List[Dict[str, object]]
    #: Model-vs-sim relative-error summaries per metric.
    latency_error: Dict[str, float]
    goodput_error: Dict[str, float]
    #: Per-family calibration coefficients (for the report).
    calibration: Dict[str, Dict[str, Dict[str, float]]]
    #: Points that failed to simulate, label -> reason.
    failed: Dict[str, str] = field(default_factory=dict)
    store_root: Optional[str] = None

    @property
    def sim_fraction(self) -> float:
        return self.simulated / self.grid_points if self.grid_points else 0.0

    @property
    def des_points_skipped_frac(self) -> float:
        return 1.0 - self.sim_fraction

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "grid_points": self.grid_points,
            "simulated": self.simulated,
            "sim_fraction": round(self.sim_fraction, 4),
            "budget": self.budget,
            "budget_frac": self.budget_frac,
            "rounds": self.rounds,
            "frontier": self.frontier,
            "latency_error": self.latency_error,
            "goodput_error": self.goodput_error,
            "calibration": self.calibration,
            "failed": dict(sorted(self.failed.items())),
            "store_root": self.store_root,
        }

    def markdown(self) -> str:
        lines = [
            "# D-ORAM Pareto surface (doram explore)",
            "",
            f"Grid: **{self.grid_points}** configurations; simulated "
            f"**{self.simulated}** "
            f"({self.sim_fraction:.1%}; DES skipped "
            f"{self.des_points_skipped_frac:.1%}) in {self.rounds} "
            f"round(s), budget {self.budget} "
            f"({self.budget_frac:.0%}).",
            "",
            f"Model-vs-sim relative error: latency mean "
            f"{self.latency_error['mean']:.3f} / p95 "
            f"{self.latency_error['p95']:.3f}; goodput mean "
            f"{self.goodput_error['mean']:.3f} / p95 "
            f"{self.goodput_error['p95']:.3f} "
            f"(n={self.latency_error['n']}).",
            "",
            "## Sim-confirmed frontier",
            "",
            "| config | NS read latency (us) | ORAM goodput (acc/s) |"
            " predicted lat (us) | predicted goodput |",
            "|---|---|---|---|---|",
        ]
        for row in self.frontier:
            lines.append(
                f"| `{row['label']}` | {row['latency_us']:.3f} | "
                f"{row['goodput_rps']:.3e} | "
                f"{row['predicted_latency_us']:.3f} | "
                f"{row['predicted_goodput_rps']:.3e} |"
            )
        if self.failed:
            lines += ["", "## Failed points", ""]
            lines += [
                f"- `{label}`: {reason}"
                for label, reason in sorted(self.failed.items())
            ]
        lines.append("")
        return "\n".join(lines)


MeasureFn = Callable[
    [Sequence[RunPoint]],
    Tuple[Dict[RunPoint, Tuple[float, float]], Dict[RunPoint, str]],
]


def _default_measure(
    store: Optional[ResultStore],
    workers: int,
    queue_root: Optional[str],
    timeout_s: Optional[float],
    progress: Optional[Callable[[str], None]],
) -> MeasureFn:
    """Simulate through the work queue (multi-process) or run_sweep.

    Each batch declares its own queue directory (``batch-NNN`` under
    ``queue_root``): a work-queue manifest pins one point set, and
    successive explore rounds submit different ones.
    """
    batches = [0]

    def _measure(points: Sequence[RunPoint]):
        if not points:
            return {}, {}
        if queue_root is not None and workers > 1:
            from repro.analysis.workqueue import run_queue_sweep

            batch_root = os.path.join(
                queue_root, f"batch-{batches[0]:03d}"
            )
            batches[0] += 1
            sweep, _queue = run_queue_sweep(
                list(points), batch_root, workers=workers,
                store_root=(store.root if store is not None else "store"),
                timeout_s=timeout_s, progress=progress,
            )
        else:
            sweep = run_sweep(
                list(points), workers=workers, store=store,
                timeout_s=timeout_s, progress=progress,
            )
        measured = {
            point: metrics_from_payload(payload)
            for point, payload in sweep.payloads.items()
        }
        failures = {
            point: reason for point, reason in sweep.failed.items()
        }
        return measured, failures

    return _measure


def _anchor_points(
    points: Sequence[RunPoint],
    configs: Dict[RunPoint, SystemConfig],
    model: DoramModel,
    per_family: int,
) -> List[RunPoint]:
    """A deterministic, spread anchor set: per calibration family, take
    evenly spaced points of the label-sorted members."""
    by_family: Dict[str, List[RunPoint]] = {}
    for point in points:
        by_family.setdefault(
            model.family(configs[point]), []
        ).append(point)
    anchors: List[RunPoint] = []
    for family in sorted(by_family):
        members = sorted(by_family[family], key=lambda p: p.label)
        take = min(per_family, len(members))
        if take == len(members):
            anchors.extend(members)
            continue
        step = (len(members) - 1) / max(take - 1, 1)
        picked = sorted({round(i * step) for i in range(take)})
        anchors.extend(members[i] for i in picked)
    return anchors


def explore(
    points: Sequence[RunPoint],
    store: Optional[ResultStore] = None,
    workers: int = 1,
    queue_root: Optional[str] = None,
    budget_frac: float = 0.2,
    anchors_per_family: int = 3,
    band_frac: float = 0.08,
    explore_frac: float = 0.2,
    max_rounds: int = 4,
    seed: int = 1,
    timeout_s: Optional[float] = None,
    measure: Optional[MeasureFn] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ExploreResult:
    """Recover the latency/goodput Pareto surface of ``points`` while
    simulating at most ``budget_frac`` of them.

    ``measure`` abstracts the simulator (tests substitute synthetic
    ground truth); the default runs through ``run_sweep`` or, with
    ``queue_root`` and ``workers > 1``, the distributed work queue.
    """
    points = dedup_points(points)
    if not points:
        raise ValueError("explore needs a non-empty grid")
    if not 0.0 < budget_frac <= 1.0:
        raise ValueError("budget_frac must be in (0, 1]")
    model = DoramModel()
    configs = {point: config_for_point(point) for point in points}
    budget = max(int(len(points) * budget_frac), 1)
    rng = random.Random(seed)
    if measure is None:
        measure = _default_measure(
            store, workers, queue_root, timeout_s, progress
        )

    measured: Dict[RunPoint, Tuple[float, float]] = {}
    failed: Dict[RunPoint, str] = {}

    def _say(text: str) -> None:
        if progress:
            progress(text)

    def _run(batch: Sequence[RunPoint]) -> None:
        fresh = [p for p in batch if p not in measured and p not in failed]
        if not fresh:
            return
        got, bad = measure(fresh)
        measured.update(got)
        failed.update(bad)

    # Round 0: anchors + calibration.
    anchors = _anchor_points(points, configs, model, anchors_per_family)
    anchors = anchors[:budget]
    _say(f"anchoring: {len(anchors)} points "
         f"(budget {budget}/{len(points)})")
    _run(anchors)
    rounds = 1

    def _calibrate() -> CalibratedModel:
        rows = [
            (configs[point], lat, good)
            for point, (lat, good) in sorted(
                measured.items(), key=lambda kv: kv[0].label
            )
        ]
        if not rows:
            return CalibratedModel(model=model)
        return fit_families(model, rows)

    calibrated = _calibrate()
    alive = [p for p in points if p not in failed]

    while rounds < max_rounds + 1:
        remaining = budget - len(measured)
        if remaining <= 0:
            break
        predictions = {
            point: calibrated.predict(configs[point]) for point in alive
        }
        metrics = [
            (predictions[p].ns_latency_us, predictions[p].goodput_rps)
            for p in alive
        ]
        front = {alive[i] for i in pareto_indices(metrics)}
        band = {
            alive[i]
            for i in range(len(alive))
            if not deeply_dominated(metrics, i, band_frac)
        }
        want = [p for p in alive
                if p in front and p not in measured]
        band_rest = sorted(
            (p for p in band - front if p not in measured),
            key=lambda p: p.label,
        )
        if not want and not band_rest:
            break  # frontier fully sim-confirmed
        explore_budget = int(remaining * explore_frac)
        selection = want + band_rest
        selection = selection[:max(remaining - explore_budget,
                                   len(want))]
        leftovers = sorted(
            (p for p in alive
             if p not in measured and p not in selection),
            key=lambda p: p.label,
        )
        if explore_budget > 0 and leftovers:
            selection += rng.sample(
                leftovers, min(explore_budget, len(leftovers))
            )
        selection = selection[:remaining]
        if not selection:
            break
        _say(f"round {rounds}: simulating {len(selection)} point(s) "
             f"({len(want)} frontier, {len(measured)} done)")
        _run(selection)
        calibrated = _calibrate()
        alive = [p for p in points if p not in failed]
        rounds += 1
        if all(p in measured for p in front):
            # The frontier predicted by the *refit* model may move;
            # loop once more unless the budget is gone.
            predictions = {
                point: calibrated.predict(configs[point])
                for point in alive
            }
            metrics = [
                (predictions[p].ns_latency_us,
                 predictions[p].goodput_rps)
                for p in alive
            ]
            front = {alive[i] for i in pareto_indices(metrics)}
            if all(p in measured for p in front):
                break

    # Final accounting off the measured surface.
    sim_points = sorted(measured, key=lambda p: p.label)
    sim_metrics = [measured[p] for p in sim_points]
    frontier_idx = pareto_indices(sim_metrics)
    lat_errors: List[float] = []
    good_errors: List[float] = []
    for point in sim_points:
        pred = calibrated.predict(configs[point])
        lat, good = measured[point]
        lat_errors.append(relative_error(pred.ns_latency_us, lat))
        good_errors.append(relative_error(pred.goodput_rps, good))
    frontier_rows = []
    for i in sorted(frontier_idx, key=lambda i: sim_metrics[i][0]):
        point = sim_points[i]
        pred = calibrated.predict(configs[point])
        lat, good = sim_metrics[i]
        frontier_rows.append({
            "label": point.label,
            "scheme": point.scheme,
            "overrides": [list(kv) for kv in point.overrides],
            "latency_us": round(lat, 6),
            "goodput_rps": round(good, 3),
            "predicted_latency_us": round(pred.ns_latency_us, 6),
            "predicted_goodput_rps": round(pred.goodput_rps, 3),
            "bottleneck": pred.bottleneck,
        })
    calibration = {
        family: {
            metric: {"a": fit.a, "b": fit.b, "points": fit.points}
            for metric, fit in sorted(fits.items())
        }
        for family, fits in sorted(calibrated.fits.items())
    }
    return ExploreResult(
        grid_points=len(points),
        simulated=len(measured),
        budget=budget,
        budget_frac=budget_frac,
        rounds=rounds,
        frontier=frontier_rows,
        latency_error=error_summary(lat_errors),
        goodput_error=error_summary(good_errors),
        calibration=calibration,
        failed={p.label: reason for p, reason in failed.items()},
        store_root=store.root if store is not None else None,
    )


# ---------------------------------------------------------------------------
# BENCH_explore.json
# ---------------------------------------------------------------------------

DEFAULT_BENCH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..", "..", "..", "BENCH_explore.json",
)


def bench_record(
    result: ExploreResult,
    label: str,
    grid: str,
    trace_length: int,
    wall_s: float,
) -> Dict[str, object]:
    """One ``BENCH_explore.json`` row (bench_trajectory's ``explore``
    workload schema)."""
    return {
        "label": label,
        "workload": "explore",
        "config": grid,
        "trace_length": trace_length,
        "wall_s": round(wall_s, 3),
        "grid_points": result.grid_points,
        "simulated": result.simulated,
        "sim_fraction": round(result.sim_fraction, 4),
        "des_points_skipped_frac": round(
            result.des_points_skipped_frac, 4
        ),
        "budget_frac": result.budget_frac,
        "rounds": result.rounds,
        "frontier_size": len(result.frontier),
        "latency_err_mean": round(result.latency_error["mean"], 4),
        "latency_err_p95": round(result.latency_error["p95"], 4),
        "goodput_err_mean": round(result.goodput_error["mean"], 4),
        "goodput_err_p95": round(result.goodput_error["p95"], 4),
    }


def write_report(
    result: ExploreResult,
    out_json: Optional[str] = None,
    out_md: Optional[str] = None,
) -> None:
    if out_json:
        with open(out_json, "w") as fp:
            json.dump(result.to_json_dict(), fp, indent=2,
                      sort_keys=True)
            fp.write("\n")
    if out_md:
        with open(out_md, "w") as fp:
            fp.write(result.markdown())
