"""Availability scoring for faulted scenario runs.

The chaos campaign's per-point verdict (DESIGN.md §13): given one
:class:`~repro.scenarios.service.ScenarioResult` and the
:class:`~repro.faults.FaultPlan` that was armed on it, compute

* **availability** -- the fraction of *offered* requests that completed
  within an SLO deadline.  Offered (not admitted) is the denominator:
  a request shed at admission because faults backed the queue up is an
  availability loss, exactly as a cloud SLA would count it;
* **goodput under faults** -- completed (and SLO-compliant) requests
  per second of the offered-load window;
* **recovery latency** -- per fault onset, the delay until the service
  next produced a *good* response (a completion within SLO whose
  completion tick is at or after the onset).  p50/p99/p999 use the
  nearest-rank method so the numbers are exact order statistics of the
  sample, never interpolated -- byte-stable across platforms;
* **MTTR** -- the mean of those recovery latencies.

Everything here is pure integer/ratio arithmetic over the result's
completion streams (``ScenarioResult.tenant_completions``, live-only
fields captured by the tenant sources), so a report is a deterministic
function of (result, plan, slo_ns) -- the campaign store can safely
content-address payloads that embed it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import TICKS_PER_NS, ns

#: Quantiles reported for the recovery-latency distribution.
RECOVERY_QUANTILES = (0.5, 0.99, 0.999)


def _nearest_rank(sorted_vals: List[int], q: float) -> int:
    """Exact nearest-rank order statistic (no interpolation)."""
    n = len(sorted_vals)
    return sorted_vals[min(n - 1, max(0, math.ceil(q * n) - 1))]


@dataclass
class AvailabilityReport:
    """One campaign point's resilience verdict (JSON-safe)."""

    slo_ns: float
    offered: int = 0
    completed: int = 0
    within_slo: int = 0
    #: within_slo / offered; 0.0 when nothing was offered (a service
    #: that served nobody gets no availability credit).
    availability: float = 0.0
    goodput_rps: float = 0.0
    slo_goodput_rps: float = 0.0
    #: Distinct fault-onset instants in the plan (ns ticks, deduped).
    fault_onsets: int = 0
    recovered: int = 0
    #: Onsets with no SLO-compliant completion at-or-after them before
    #: the run ended (e.g. fault window past sim end, or the service
    #: never got healthy again).
    unrecovered: int = 0
    mttr_ns: Optional[float] = None
    #: ``{"p50": ..., "p99": ..., "p999": ...}`` in ns; None when no
    #: onset recovered.
    recovery_ns: Dict[str, Optional[float]] = field(default_factory=dict)
    #: Per-tenant ``{"availability": ..., "within_slo": ...}`` rows.
    per_tenant: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "slo_ns": self.slo_ns,
            "offered": self.offered,
            "completed": self.completed,
            "within_slo": self.within_slo,
            "availability": self.availability,
            "goodput_rps": self.goodput_rps,
            "slo_goodput_rps": self.slo_goodput_rps,
            "fault_onsets": self.fault_onsets,
            "recovered": self.recovered,
            "unrecovered": self.unrecovered,
            "mttr_ns": self.mttr_ns,
            "recovery_ns": self.recovery_ns,
            "per_tenant": self.per_tenant,
        }


def fault_onsets(plan) -> List[int]:
    """Distinct fault-onset ticks of a plan, sorted ascending.

    Every rule contributes its window start; a rule starting at 0 (the
    default -- "always on") counts as an onset at tick 0, so an armed
    always-on plan still gets a recovery measurement (time to the first
    good response under fault pressure).
    """
    onsets = set()
    for rule in tuple(plan.link) + tuple(plan.dram) + tuple(plan.delegator):
        onsets.add(ns(rule.start_ns))
    return sorted(onsets)


def score_scenario(result, plan, slo_ns: float) -> AvailabilityReport:
    """Score one faulted scenario run against an SLO deadline.

    ``result`` is duck-typed: anything exposing ``tenants`` (per-tenant
    report rows with ``offered``/``completed``), ``tenant_completions``
    (per-tenant ``(completion_tick, sojourn_ticks)`` lists), and
    ``config.horizon_ns`` works -- the edge-case property tests drive
    this with synthetic stand-ins.
    """
    slo_ticks = ns(slo_ns)
    horizon_s = result.config.horizon_ns * 1e-9

    offered = 0
    completed = 0
    within_slo = 0
    per_tenant: Dict[str, Dict[str, float]] = {}
    merged: List[Tuple[int, int]] = []
    for tenant in sorted(result.tenants, key=int):
        row = result.tenants[tenant]
        t_offered = int(row["offered"])
        ticks = list(result.tenant_completions.get(tenant, ()))
        t_within = sum(1 for _, sojourn in ticks if sojourn <= slo_ticks)
        offered += t_offered
        completed += len(ticks)
        within_slo += t_within
        merged.extend(ticks)
        per_tenant[tenant] = {
            "availability": t_within / t_offered if t_offered else 0.0,
            "within_slo": t_within,
        }
    merged.sort()

    # -- recovery latency per fault onset -----------------------------
    good_ticks = sorted(
        tick for tick, sojourn in merged if sojourn <= slo_ticks
    )
    onsets = fault_onsets(plan)
    latencies: List[int] = []
    unrecovered = 0
    lo = 0
    for onset in onsets:
        # good_ticks is sorted and onsets ascend: resume the scan.
        while lo < len(good_ticks) and good_ticks[lo] < onset:
            lo += 1
        if lo < len(good_ticks):
            latencies.append(good_ticks[lo] - onset)
        else:
            unrecovered += 1

    recovery: Dict[str, Optional[float]] = {}
    mttr = None
    if latencies:
        ordered = sorted(latencies)
        for q in RECOVERY_QUANTILES:
            key = f"p{q * 100:g}".replace(".", "")
            recovery[key] = _nearest_rank(ordered, q) / TICKS_PER_NS
        mttr = sum(latencies) / len(latencies) / TICKS_PER_NS
    else:
        for q in RECOVERY_QUANTILES:
            recovery[f"p{q * 100:g}".replace(".", "")] = None

    return AvailabilityReport(
        slo_ns=slo_ns,
        offered=offered,
        completed=completed,
        within_slo=within_slo,
        availability=within_slo / offered if offered else 0.0,
        goodput_rps=completed / horizon_s,
        slo_goodput_rps=within_slo / horizon_s,
        fault_onsets=len(onsets),
        recovered=len(latencies),
        unrecovered=unrecovered,
        mttr_ns=mttr,
        recovery_ns=recovery,
        per_tenant=per_tenant,
    )
