"""T25mix / T33 channel-contention profiling (Section III-D, Fig. 12).

The quantities, as the paper defines them, are NS-App *average memory
access latency* slowdowns relative to a solo run:

* ``T33``   -- NS-Apps spread over the three normal channels only
  (each channel carries ~33 % of the traffic; D-ORAM/0);
* ``T25``   -- NS-Apps over all four channels with the S-App inactive;
* ``T25mix``-- NS-Apps over all four channels with the S-App hammering
  the secure channel (D-ORAM/7).

Only the ratio ``r = T25mix / T33`` drives the c decision, and the solo
denominator cancels in it, but all three values are exposed because
Fig. 8 plots the underlying latencies.  Profiling deliberately runs on a
*different trace segment* than the measured experiment (the paper uses a
different segment of the MSC trace) so Fig. 12 tests generalization, not
memorization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.channel_sharing import SharingDecision, recommend_c
from repro.core.schemes import run_scheme


@dataclass(frozen=True)
class ProfileResult:
    """Profiled latencies (ns) and the derived decision."""

    benchmark: str
    latency_solo_ns: float
    latency_25_ns: float
    latency_25mix_ns: float
    latency_33_ns: float
    decision: SharingDecision

    @property
    def t25(self) -> float:
        return self.latency_25_ns / self.latency_solo_ns

    @property
    def t25mix(self) -> float:
        return self.latency_25mix_ns / self.latency_solo_ns

    @property
    def t33(self) -> float:
        return self.latency_33_ns / self.latency_solo_ns

    @property
    def ratio(self) -> float:
        return self.decision.ratio


def _ns_latency(result) -> float:
    """NS demand (read) latency in ns.

    Reads are what block retirement and set execution time; writes are
    posted into the controller's write queue and their queueing latency
    is invisible to the core.  Profiling on read latency gives the ratio
    the dynamic range the paper's rule needs (write-drain timing noise
    otherwise swamps the secure-channel signal).
    """
    read = result.ns_read_latency
    if read.count == 0:
        raise RuntimeError("profiling run recorded no NS reads")
    return read.mean / 16.0  # ticks -> ns


#: Schemes one profiling pass simulates (at the profiling segment).
PROFILE_SCHEMES = ("1ns", "7ns-4ch", "doram", "doram/0")


def profile_ratio(
    benchmark: str,
    trace_length: int = 3000,
    segment: int = 1,
    num_ns_apps: int = 7,
    runner: Callable = run_scheme,
) -> ProfileResult:
    """Run the three profiling configurations and apply the c rule.

    ``runner`` abstracts how the simulations execute; Fig. 12 passes
    the experiments memo (``cached_run``) so sweep-primed profiling
    runs are reused instead of re-simulated.
    """
    solo = runner(
        "1ns", benchmark, trace_length, segment=segment,
    )
    t25 = runner("7ns-4ch", benchmark, trace_length, segment=segment)
    t25mix = runner("doram", benchmark, trace_length, segment=segment)
    t33 = runner("doram/0", benchmark, trace_length, segment=segment)
    lat_solo = _ns_latency(solo)
    lat_25mix = _ns_latency(t25mix)
    lat_33 = _ns_latency(t33)
    ratio = lat_25mix / lat_33
    return ProfileResult(
        benchmark=benchmark,
        latency_solo_ns=lat_solo,
        latency_25_ns=_ns_latency(t25),
        latency_25mix_ns=lat_25mix,
        latency_33_ns=lat_33,
        decision=recommend_c(ratio, num_ns_apps),
    )
