"""Summary metrics used by the result figures and the SLO reports."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.sim.stats import Histogram, geomean

#: The scenario layer's SLO quantiles (p50 / p99 / p999).
SLO_QUANTILES: Tuple[float, ...] = (0.5, 0.99, 0.999)


def quantile_label(q: float) -> str:
    """``0.5 -> "p50"``, ``0.99 -> "p99"``, ``0.999 -> "p999"``."""
    if not 0.0 < q < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    return "p" + format(q * 100.0, "g").replace(".", "")


def latency_quantiles_ns(
    hist: Histogram,
    ticks_per_ns: int,
    quantiles: Sequence[float] = SLO_QUANTILES,
) -> Dict[str, float]:
    """SLO percentile summary of a tick-valued latency histogram.

    Quantiles resolve to bucket lower edges (exact integers), converted
    to nanoseconds -- deterministic floats, safe for canonical-JSON
    reports.
    """
    return {
        quantile_label(q): hist.quantile(q) / ticks_per_ns
        for q in quantiles
    }


def slowdown(value: float, reference: float) -> float:
    """``value / reference`` with a guard against empty references."""
    if reference <= 0:
        raise ValueError("reference must be positive")
    return value / reference


def normalized_times(
    times: Mapping[str, float], reference_key: str
) -> Dict[str, float]:
    """Normalize a ``{scheme: time}`` mapping to one scheme (= 1.0)."""
    if reference_key not in times:
        raise KeyError(f"reference {reference_key!r} missing")
    ref = times[reference_key]
    return {key: slowdown(value, ref) for key, value in times.items()}


def summarize_best_worst_gmean(
    values: Iterable[float],
) -> Tuple[float, float, float]:
    """(best, worst, gmean) of a slowdown population -- Fig. 4's bars.

    "Best" is the smallest slowdown (least degradation).
    """
    vals: List[float] = list(values)
    if not vals:
        raise ValueError("empty population")
    return min(vals), max(vals), geomean(vals)
