"""Summary metrics used by the result figures."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.sim.stats import geomean


def slowdown(value: float, reference: float) -> float:
    """``value / reference`` with a guard against empty references."""
    if reference <= 0:
        raise ValueError("reference must be positive")
    return value / reference


def normalized_times(
    times: Mapping[str, float], reference_key: str
) -> Dict[str, float]:
    """Normalize a ``{scheme: time}`` mapping to one scheme (= 1.0)."""
    if reference_key not in times:
        raise KeyError(f"reference {reference_key!r} missing")
    ref = times[reference_key]
    return {key: slowdown(value, ref) for key, value in times.items()}


def summarize_best_worst_gmean(
    values: Iterable[float],
) -> Tuple[float, float, float]:
    """(best, worst, gmean) of a slowdown population -- Fig. 4's bars.

    "Best" is the smallest slowdown (least degradation).
    """
    vals: List[float] = list(values)
    if not vals:
        raise ValueError("empty population")
    return min(vals), max(vals), geomean(vals)
