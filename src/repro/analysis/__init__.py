"""Result processing: metrics, profiling, and experiment drivers.

* :mod:`~repro.analysis.metrics` -- slowdowns, normalization, geometric
  means (the paper's summary statistics);
* :mod:`~repro.analysis.profiling` -- the T25mix/T33 latency profiling of
  Section III-D / Fig. 12;
* :mod:`~repro.analysis.experiments` -- one driver per paper table/figure,
  shared by the CLI and the benchmark harness (results are memoised per
  process so Figs. 9, 11 and 13 reuse each other's runs).
"""

from repro.analysis.metrics import (
    normalized_times,
    slowdown,
    summarize_best_worst_gmean,
)
from repro.analysis.profiling import ProfileResult, profile_ratio
from repro.analysis import experiments

__all__ = [
    "normalized_times",
    "slowdown",
    "summarize_best_worst_gmean",
    "ProfileResult",
    "profile_ratio",
    "experiments",
]
