"""Result processing: metrics, profiling, and experiment drivers.

* :mod:`~repro.analysis.metrics` -- slowdowns, normalization, geometric
  means (the paper's summary statistics);
* :mod:`~repro.analysis.profiling` -- the T25mix/T33 latency profiling of
  Section III-D / Fig. 12;
* :mod:`~repro.analysis.experiments` -- one driver per paper table/figure,
  shared by the CLI and the benchmark harness (results are memoised per
  process so Figs. 9, 11 and 13 reuse each other's runs);
* :mod:`~repro.analysis.workqueue` -- lease-arbitrated multi-worker
  drains of one shared sweep (``doram sweep --queue/--join``);
* :mod:`~repro.analysis.model` -- the closed-form queueing approximation
  of the D-ORAM pipeline plus its per-family calibration;
* :mod:`~repro.analysis.explore` -- analytical triage + selective
  simulation of configuration grids (``doram explore``).
"""

from repro.analysis.metrics import (
    normalized_times,
    slowdown,
    summarize_best_worst_gmean,
)
from repro.analysis.profiling import ProfileResult, profile_ratio
from repro.analysis import experiments
from repro.analysis.model import CalibratedModel, DoramModel, fit_families
from repro.analysis.workqueue import (
    DrainResult,
    QueueStats,
    WorkQueue,
    run_queue_sweep,
)
from repro.analysis.explore import ExploreResult, build_grid, explore

__all__ = [
    "normalized_times",
    "slowdown",
    "summarize_best_worst_gmean",
    "ProfileResult",
    "profile_ratio",
    "experiments",
    "CalibratedModel",
    "DoramModel",
    "fit_families",
    "DrainResult",
    "QueueStats",
    "WorkQueue",
    "run_queue_sweep",
    "ExploreResult",
    "build_grid",
    "explore",
]
