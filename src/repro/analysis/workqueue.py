"""Distributed work-queue drains of one shared sweep.

PR 2's :class:`~repro.analysis.sweep.ResultStore` already makes a sweep
*resumable*: every finished point is one content-addressed file, written
atomically.  This module makes the same store *drainable by N workers at
once* -- N processes today, N hosts sharing a filesystem tomorrow --
with no coordinator process:

* A **queue directory** holds one ``manifest.json`` (the declared point
  list plus execution options, written once by whoever creates the
  sweep) next to a ``leases/`` directory and the result store.  Any
  worker that can read the manifest can join the drain
  (``doram sweep --join DIR --worker-id w3``).

* **Lease files** arbitrate point claims: a worker claims a point by
  ``O_CREAT | O_EXCL``-creating ``leases/<key>.lease`` -- the one
  filesystem primitive that is atomic on every POSIX filesystem and on
  NFS -- and stamps it with its owner id.  While simulating, a sidecar
  thread touches the lease (mtime heartbeat); a lease whose mtime is
  older than the TTL is *stale* -- its owner died or wedged -- and any
  worker may break it and re-dispatch the point (straggler
  re-dispatch).

* **Crash safety is free**: the simulator is deterministic and payloads
  are exact-integer state, so two workers racing the same point (the
  unavoidable window between "heartbeat missed" and "owner was merely
  slow") both produce byte-identical payloads, and the store's atomic
  ``put`` makes the double write harmless.  The equivalence suite
  extends PR 2's guarantee: an N-worker drain -- including one that was
  killed and resumed -- is byte-identical to a serial ``run_sweep``.

* **Failures are bounded and shared**: each failed attempt drops a
  uniquely-named marker under ``failed/``; once a point accumulates
  ``max_attempts`` markers (the PR 5 retry bound, one retry by
  default), a permanent failure record stops every worker from spinning
  on it, and the drain surfaces it exactly like
  :attr:`~repro.analysis.sweep.SweepResult.failed`.

Nothing here imports the simulator directly -- points execute through
:func:`~repro.analysis.sweep.execute_point`, so scenario points and
test doubles work unchanged.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.sweep import (
    ResultStore,
    RunPoint,
    SweepResult,
    canonical_json,
    dedup_points,
    execute_point,
)

#: Bump when the manifest layout changes shape.
MANIFEST_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
LEASE_DIR = "leases"
FAILED_DIR = "failed"
WORKER_DIR = "workers"

#: Default lease time-to-live: a worker that has not heartbeat for this
#: long is presumed dead and its point is re-dispatched.  Heartbeats run
#: every ``ttl / 4``, so transient scheduler hiccups do not trigger
#: spurious reclaims.
DEFAULT_LEASE_TTL_S = 30.0

#: Attempts per point across the whole drain (1 initial + 1 retry --
#: the PR 5 bounded-retry semantics, now enforced globally via the
#: shared attempt markers instead of per-process counters).
DEFAULT_MAX_ATTEMPTS = 2

#: Idle backoff while waiting on points leased by other workers.
POLL_INTERVAL_S = 0.2


class WorkQueueError(RuntimeError):
    """Queue-directory misuse: missing/yet-unwritten/foreign manifest."""


def _atomic_write_json(path: str, payload: Dict[str, object]) -> None:
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "w") as fp:
            fp.write(canonical_json(payload))
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


#: Non-RunPoint sweep axes a manifest can round-trip, keyed by the
#: ``kind`` tag their ``to_manifest`` emits.  Values are lazy import
#: targets so the queue layer never pays for (or cycles with) the
#: heavier point modules.
_POINT_KINDS: Dict[str, Tuple[str, str]] = {
    "chaos": ("repro.faults.campaign", "FaultPoint"),
}


def _point_to_manifest(point) -> Dict[str, object]:
    to_manifest = getattr(point, "to_manifest", None)
    if to_manifest is not None:
        doc = to_manifest()
        if doc.get("kind") not in _POINT_KINDS:
            raise WorkQueueError(
                f"point {point!r} emits unregistered manifest kind "
                f"{doc.get('kind')!r}"
            )
        return doc
    return {
        "scheme": point.scheme,
        "benchmark": point.benchmark,
        "trace_length": point.trace_length,
        "segment": point.segment,
        "overrides": [[k, v] for k, v in point.overrides],
    }


def _point_from_manifest(doc: Dict[str, object]):
    kind = doc.get("kind")
    if kind is not None:
        try:
            module_name, class_name = _POINT_KINDS[kind]
        except KeyError:
            raise WorkQueueError(
                f"manifest names unknown point kind {kind!r} "
                f"(registered: {', '.join(sorted(_POINT_KINDS))})"
            ) from None
        import importlib

        cls = getattr(importlib.import_module(module_name), class_name)
        return cls.from_manifest(doc)
    overrides = tuple(
        (k, tuple(v) if isinstance(v, list) else v)
        for k, v in doc.get("overrides", ())
    )
    return RunPoint(
        scheme=doc["scheme"],
        benchmark=doc["benchmark"],
        trace_length=doc["trace_length"],
        segment=doc.get("segment", 0),
        overrides=overrides,
    )


def default_owner() -> str:
    """A default worker identity: host + pid, unique per process."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class QueueStats:
    """One consistent-enough snapshot of drain progress.

    Taken without locks, so counts can be momentarily off by the points
    that complete mid-walk; fine for the observability readout it
    feeds (``doram sweep --status``).
    """

    total: int
    done: int
    leased: int
    stale: int
    pending: int
    failed: int
    workers: List[Dict[str, object]] = field(default_factory=list)

    def describe(self) -> List[str]:
        lines = [
            f"points: {self.total} total, {self.done} done, "
            f"{self.leased} leased ({self.stale} stale), "
            f"{self.pending} pending, {self.failed} failed"
        ]
        for row in self.workers:
            rate = row.get("points_per_s")
            rate_s = f" ({rate:.2f} points/s)" if rate else ""
            lines.append(
                f"worker {row['owner']}: {row['completed']} done, "
                f"{row['failed']} failed, {row['reclaimed']} reclaimed"
                f"{rate_s}"
            )
        return lines


@dataclass
class DrainResult:
    """Per-worker accounting for one :meth:`WorkQueue.drain` call."""

    owner: str
    #: Points this worker simulated and persisted.
    completed: int = 0
    #: Points found already in the store (done by another worker or a
    #: previous run).
    skipped: int = 0
    #: Stale leases this worker broke.
    reclaimed: int = 0
    #: Second attempts this worker performed.
    retried: int = 0
    #: Permanent failures recorded, keyed to the final reason.
    failed: Dict[RunPoint, str] = field(default_factory=dict)
    wall_s: float = 0.0


class WorkQueue:
    """One shared sweep: a manifest, a store, and lease arbitration."""

    def __init__(self, root: str, manifest: Dict[str, object]) -> None:
        self.root = root
        self.manifest = manifest
        store_root = manifest["store"]
        if not os.path.isabs(store_root):
            store_root = os.path.join(root, store_root)
        self.store = ResultStore(store_root)
        self.points: List[RunPoint] = [
            _point_from_manifest(doc) for doc in manifest["points"]
        ]
        self.with_digest: bool = bool(manifest.get("with_digest", False))
        self.timeout_s: Optional[float] = manifest.get("timeout_s")
        self.max_attempts: int = int(
            manifest.get("max_attempts", DEFAULT_MAX_ATTEMPTS)
        )
        self.lease_ttl_s: float = float(
            manifest.get("lease_ttl_s", DEFAULT_LEASE_TTL_S)
        )
        self._keys: Dict[RunPoint, str] = {
            point: point.key(self.with_digest) for point in self.points
        }
        for sub in (LEASE_DIR, FAILED_DIR, WORKER_DIR):
            os.makedirs(os.path.join(root, sub), exist_ok=True)

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str,
        points: Iterable[RunPoint],
        store_root: str = "store",
        with_digest: bool = False,
        timeout_s: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    ) -> "WorkQueue":
        """Declare a new shared sweep under ``root``.

        Re-creating over an existing manifest is allowed only when the
        declaration is identical (idempotent restart of the submitting
        host); a different point list is refused rather than silently
        merged.
        """
        points = dedup_points(points)
        manifest = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "store": store_root,
            "with_digest": bool(with_digest),
            "timeout_s": timeout_s,
            "max_attempts": int(max_attempts),
            "lease_ttl_s": float(lease_ttl_s),
            "points": [_point_to_manifest(p) for p in points],
        }
        path = os.path.join(root, MANIFEST_NAME)
        if os.path.exists(path):
            with open(path) as fp:
                existing = json.load(fp)
            if canonical_json(existing) != canonical_json(manifest):
                raise WorkQueueError(
                    f"{root} already declares a different sweep; use a "
                    f"fresh queue directory or delete the old manifest"
                )
        else:
            _atomic_write_json(path, manifest)
        return cls(root, manifest)

    @classmethod
    def join(cls, root: str) -> "WorkQueue":
        """Open an existing queue directory (worker side)."""
        path = os.path.join(root, MANIFEST_NAME)
        try:
            with open(path) as fp:
                manifest = json.load(fp)
        except OSError:
            raise WorkQueueError(
                f"no sweep manifest at {path}; create the queue first "
                f"(doram sweep --queue {root} ...)"
            ) from None
        except ValueError:
            raise WorkQueueError(
                f"corrupt sweep manifest at {path}"
            ) from None
        if manifest.get("schema") != MANIFEST_SCHEMA_VERSION:
            raise WorkQueueError(
                f"manifest schema {manifest.get('schema')!r} at {path} "
                f"does not match this build "
                f"({MANIFEST_SCHEMA_VERSION})"
            )
        return cls(root, manifest)

    # -- lease primitives ------------------------------------------------
    def key_for(self, point: RunPoint) -> str:
        return self._keys[point]

    def lease_path(self, key: str) -> str:
        return os.path.join(self.root, LEASE_DIR, f"{key}.lease")

    def claim(self, key: str, owner: str) -> bool:
        """Try to take the lease for ``key``; atomic, non-blocking.

        ``O_CREAT | O_EXCL`` guarantees exactly one creator even when
        two workers race the same point on a shared filesystem.
        """
        path = self.lease_path(key)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            return False
        try:
            with os.fdopen(fd, "w") as fp:
                fp.write(canonical_json({
                    "owner": owner,
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "acquired": time.time(),
                }))
        except BaseException:
            try:
                os.unlink(path)
            except OSError:
                pass
            raise
        return True

    def heartbeat(self, key: str) -> None:
        """Refresh the lease's liveness stamp (mtime)."""
        try:
            os.utime(self.lease_path(key))
        except OSError:
            pass

    def release(self, key: str) -> None:
        try:
            os.unlink(self.lease_path(key))
        except OSError:
            pass

    def lease_age_s(self, key: str) -> Optional[float]:
        """Seconds since the lease's last heartbeat; ``None`` if free."""
        try:
            return max(0.0, time.time() - os.path.getmtime(
                self.lease_path(key)
            ))
        except OSError:
            return None

    def break_if_stale(self, key: str) -> bool:
        """Remove a lease whose owner stopped heartbeating.

        Best-effort: losing the unlink race to another reclaimer (or to
        the owner releasing normally) is fine -- the subsequent
        :meth:`claim` is the only arbiter of ownership.
        """
        age = self.lease_age_s(key)
        if age is None or age <= self.lease_ttl_s:
            return False
        try:
            os.unlink(self.lease_path(key))
        except OSError:
            return False
        return True

    # -- failure bookkeeping ---------------------------------------------
    def _failed_marker(self, key: str) -> str:
        return os.path.join(self.root, FAILED_DIR, f"{key}.json")

    def record_attempt(self, key: str, owner: str, reason: str) -> int:
        """Drop a uniquely-named attempt marker; returns the new count.

        Unique names (owner + uuid) make the count race-free without
        read-modify-write locking: concurrent failures each land their
        own marker.
        """
        name = f"{key}.attempt-{owner}-{uuid.uuid4().hex[:8]}"
        _atomic_write_json(
            os.path.join(self.root, FAILED_DIR, name),
            {"owner": owner, "reason": reason, "time": time.time()},
        )
        return self.attempt_count(key)

    def attempt_count(self, key: str) -> int:
        prefix = f"{key}.attempt-"
        try:
            names = os.listdir(os.path.join(self.root, FAILED_DIR))
        except OSError:
            return 0
        return sum(1 for name in names if name.startswith(prefix))

    def mark_failed(self, key: str, owner: str, reason: str) -> None:
        _atomic_write_json(self._failed_marker(key), {
            "owner": owner,
            "reason": reason,
            "attempts": self.attempt_count(key),
            "time": time.time(),
        })

    def failure(self, key: str) -> Optional[Dict[str, object]]:
        try:
            with open(self._failed_marker(key)) as fp:
                return json.load(fp)
        except (OSError, ValueError):
            return None

    def clear_failure(self, key: str) -> None:
        """Forget a permanent failure (and its attempts) so the point
        re-dispatches -- the resume path after a bug fix."""
        try:
            os.unlink(self._failed_marker(key))
        except OSError:
            pass
        prefix = f"{key}.attempt-"
        failed_dir = os.path.join(self.root, FAILED_DIR)
        try:
            names = os.listdir(failed_dir)
        except OSError:
            return
        for name in names:
            if name.startswith(prefix):
                try:
                    os.unlink(os.path.join(failed_dir, name))
                except OSError:
                    pass

    # -- worker status ----------------------------------------------------
    def _worker_status_path(self, owner: str) -> str:
        return os.path.join(self.root, WORKER_DIR, f"{owner}.json")

    def write_worker_status(self, owner: str, result: DrainResult,
                            started: float) -> None:
        elapsed = max(time.time() - started, 1e-9)
        _atomic_write_json(self._worker_status_path(owner), {
            "owner": owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "completed": result.completed,
            "skipped": result.skipped,
            "reclaimed": result.reclaimed,
            "retried": result.retried,
            "failed": len(result.failed),
            "elapsed_s": elapsed,
            "points_per_s": result.completed / elapsed,
            "updated": time.time(),
        })

    # -- observability -----------------------------------------------------
    def stats(self) -> QueueStats:
        """Drain progress: done / leased / pending / failed counts plus
        per-worker throughput (the ``--status`` readout)."""
        done = leased = stale = failed = 0
        for point in self.points:
            key = self._keys[point]
            if key in self.store:
                done += 1
                continue
            if self.failure(key) is not None:
                failed += 1
                continue
            age = self.lease_age_s(key)
            if age is not None:
                leased += 1
                if age > self.lease_ttl_s:
                    stale += 1
        workers: List[Dict[str, object]] = []
        worker_dir = os.path.join(self.root, WORKER_DIR)
        try:
            names = sorted(os.listdir(worker_dir))
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(worker_dir, name)) as fp:
                    workers.append(json.load(fp))
            except (OSError, ValueError):
                continue
        total = len(self.points)
        return QueueStats(
            total=total,
            done=done,
            leased=leased,
            stale=stale,
            pending=total - done - leased - failed,
            failed=failed,
            workers=workers,
        )

    # -- the drain loop ----------------------------------------------------
    def drain(
        self,
        owner: Optional[str] = None,
        progress: Optional[Callable[[str], None]] = None,
        poll_interval_s: float = POLL_INTERVAL_S,
    ) -> DrainResult:
        """Run points until every manifest point is done or failed.

        Any number of workers may drain concurrently; each pass claims
        what it can, and between passes stale leases are broken so a
        killed worker's points re-dispatch.  Returns this worker's
        accounting (the queue's global state lives in the store and the
        failure markers).
        """
        owner = owner or default_owner()
        started = time.time()
        result = DrainResult(owner=owner)
        seen_done: set = set()
        while True:
            outstanding = 0
            progressed = False
            for point in self.points:
                key = self._keys[point]
                if key in seen_done:
                    continue
                if key in self.store:
                    seen_done.add(key)
                    result.skipped += 1
                    continue
                if self.failure(key) is not None:
                    seen_done.add(key)
                    continue
                if not self.claim(key, owner):
                    if self.break_if_stale(key):
                        result.reclaimed += 1
                        if progress:
                            progress(f"reclaimed stale lease: "
                                     f"{point.label}")
                        if not self.claim(key, owner):
                            outstanding += 1
                            continue
                    else:
                        outstanding += 1
                        continue
                # Lease held from here on.
                try:
                    if key in self.store:
                        # Done between our store check and the claim.
                        seen_done.add(key)
                        result.skipped += 1
                        continue
                    if self._run_leased_point(
                        point, key, owner, result, progress
                    ):
                        progressed = True
                    seen_done.add(key)
                finally:
                    self.release(key)
                self.write_worker_status(owner, result, started)
            if not outstanding:
                break
            if not progressed:
                # Everything left is leased by someone else: wait for
                # them to finish or for their leases to go stale.
                time.sleep(poll_interval_s)
        result.wall_s = time.time() - started
        self.write_worker_status(owner, result, started)
        return result

    def _run_leased_point(
        self,
        point: RunPoint,
        key: str,
        owner: str,
        result: DrainResult,
        progress: Optional[Callable[[str], None]],
    ) -> bool:
        """Execute one claimed point (with heartbeat + bounded retry).

        Returns True when the point produced a payload; False when it
        was recorded as permanently failed.
        """
        stop = threading.Event()
        interval = max(self.lease_ttl_s / 4.0, 0.05)

        def _beat() -> None:
            while not stop.wait(interval):
                self.heartbeat(key)

        beater = threading.Thread(
            target=_beat, name=f"lease-{key[:8]}", daemon=True
        )
        beater.start()
        try:
            while True:
                try:
                    payload = execute_point(
                        point, self.with_digest, self.timeout_s
                    )
                except Exception as exc:  # noqa: BLE001 - bounded retry
                    reason = f"{type(exc).__name__}: {exc}"
                    attempts = self.record_attempt(key, owner, reason)
                    if attempts >= self.max_attempts:
                        self.mark_failed(key, owner, reason)
                        result.failed[point] = reason
                        if progress:
                            progress(f"failed {point.label}: {reason}")
                        return False
                    result.retried += 1
                    if progress:
                        progress(f"retry {point.label}: {reason}")
                    continue
                self.store.put(key, payload)
                result.completed += 1
                if progress:
                    progress(f"done {point.label}")
                return True
        finally:
            stop.set()
            beater.join(1.0)

    # -- collection --------------------------------------------------------
    def collect(self) -> SweepResult:
        """Assemble a :class:`SweepResult` from the store after a drain.

        ``simulated``/``store_hits`` describe the queue outcome from the
        submitting side: everything present was simulated *somewhere*;
        per-worker attribution lives in the worker status files.
        """
        payloads: Dict[RunPoint, Dict[str, object]] = {}
        failed: Dict[RunPoint, str] = {}
        for point in self.points:
            key = self._keys[point]
            payload = self.store.get(key)
            if payload is not None:
                payloads[point] = payload
                continue
            marker = self.failure(key)
            if marker is not None:
                failed[point] = str(marker.get("reason", "unknown"))
        return SweepResult(
            payloads=payloads,
            simulated=len(payloads),
            store_hits=0,
            workers=0,
            wall_s=0.0,
            store_root=self.store.root,
            failed=failed,
        )


# ---------------------------------------------------------------------------
# Multi-process convenience driver
# ---------------------------------------------------------------------------


def _drain_entry(root: str, owner: str) -> None:
    """Worker-process entry point (module-level for picklability)."""
    queue = WorkQueue.join(root)
    queue.drain(owner=owner)


def run_queue_sweep(
    points: Sequence[RunPoint],
    root: str,
    workers: int = 2,
    store_root: str = "store",
    with_digest: bool = False,
    timeout_s: Optional[float] = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[SweepResult, WorkQueue]:
    """Create (or resume) a queue under ``root`` and drain it with
    ``workers`` local processes.

    The same queue directory can simultaneously be drained by workers
    on other hosts via ``WorkQueue.join``; this helper is the
    single-host ergonomic path behind ``doram sweep --queue``.
    """
    import multiprocessing

    queue = WorkQueue.create(
        root, points, store_root=store_root, with_digest=with_digest,
        timeout_s=timeout_s, lease_ttl_s=lease_ttl_s,
    )
    started = time.monotonic()
    if workers <= 1:
        queue.drain(owner=default_owner(), progress=progress)
    else:
        procs = []
        for index in range(workers):
            proc = multiprocessing.Process(
                target=_drain_entry,
                args=(root, f"{default_owner()}-w{index}"),
                daemon=False,
            )
            proc.start()
            procs.append(proc)
        for proc in procs:
            proc.join()
        # A worker that crashed outright (non-zero exit) left stale
        # leases; one serial pass heals anything it abandoned.
        stats = queue.stats()
        if stats.pending or stats.leased:
            ttl = queue.lease_ttl_s
            try:
                queue.lease_ttl_s = 0.0
                queue.drain(owner=f"{default_owner()}-heal",
                            progress=progress)
            finally:
                queue.lease_ttl_s = ttl
    result = queue.collect()
    result.workers = workers
    result.wall_s = time.monotonic() - started
    return result, queue
