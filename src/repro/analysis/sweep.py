"""Parallel, resumable experiment sweeps with an on-disk result store.

Every paper exhibit is a set of *independent* simulations -- one
``run_scheme`` call per ``(scheme, benchmark, trace-segment, config
override)`` point -- so a full figure sweep parallelizes trivially.
This module provides the three pieces the figure drivers build on:

* :class:`RunPoint` -- a picklable, hashable declaration of one
  simulation.  Its :meth:`RunPoint.key` is a sha256 over the *resolved*
  :class:`~repro.core.config.SystemConfig` (canonical JSON), the trace
  length, and :data:`STORE_SCHEMA_VERSION` -- content addressing, so
  scheme aliases (``baseline`` / ``1s7ns``) or reordered overrides that
  resolve to the same machine share one store entry, and any change to
  the config schema or result format retires old entries wholesale.

* :class:`ResultStore` -- a directory of one canonical-JSON file per
  run, written atomically (tmp + ``os.replace``), so an interrupted
  sweep leaves only complete entries and the next invocation resumes
  where it died instead of re-simulating.

* :func:`run_sweep` -- fan-out over a :class:`ProcessPoolExecutor`.
  Each worker runs one point and returns the *serialized* payload
  (:meth:`SimResult.to_json_dict` + optionally the PR-1 trace digest);
  the parent persists and returns them.  The simulator is deterministic
  given a config, and payloads are exact-integer state, so a parallel
  sweep is bit-identical to a serial one -- enforced by
  ``tests/analysis/test_sweep.py``.

Environment knobs:

* ``DORAM_SWEEP_WORKERS`` -- default worker count (else ``os.cpu_count``).
* ``DORAM_SWEEP_STORE``   -- default store directory
  (else ``.doram-sweep/`` under the current directory).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.schemes import make_config, run_scheme
from repro.core.system import SimResult

#: Bump when the result payload or the config schema changes shape;
#: old store entries then miss and re-simulate instead of deserializing
#: garbage.
STORE_SCHEMA_VERSION = 1

#: Default on-disk store location (env: ``DORAM_SWEEP_STORE``).
DEFAULT_STORE_ENV = "DORAM_SWEEP_STORE"
DEFAULT_STORE_DIR = ".doram-sweep"

#: Default worker count (env: ``DORAM_SWEEP_WORKERS``).
WORKERS_ENV = "DORAM_SWEEP_WORKERS"


def default_store_path() -> str:
    return os.environ.get(DEFAULT_STORE_ENV, "").strip() or DEFAULT_STORE_DIR


def default_workers() -> int:
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


def canonical_json(payload: object) -> str:
    """Canonical encoding: sorted keys, no whitespace -- the byte form
    both the store files and the content-address hash are built from."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# Run points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunPoint:
    """One independent simulation in a sweep.

    ``overrides`` is a sorted tuple of ``(field, value)`` pairs applied
    to :func:`~repro.core.schemes.make_config`; values must be
    picklable and JSON-safe (the usual scalars).
    """

    scheme: str
    benchmark: str
    trace_length: int
    segment: int = 0
    overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "overrides", tuple(sorted(tuple(self.overrides)))
        )

    @property
    def label(self) -> str:
        extra = "".join(
            f" {k}={v}" for k, v in self.overrides
        )
        return (f"{self.scheme}/{self.benchmark}"
                f"@{self.trace_length}.{self.segment}{extra}")

    def resolved_config(self):
        """The full :class:`SystemConfig` this point simulates."""
        return make_config(
            self.scheme, self.benchmark, self.trace_length,
            segment=self.segment, **dict(self.overrides),
        )

    def key(self, with_digest: bool = False) -> str:
        """Content address: sha256 of the resolved config + schema."""
        doc = {
            "schema": STORE_SCHEMA_VERSION,
            "config": self.resolved_config().to_json_dict(),
            "trace_length": self.trace_length,
            "with_digest": bool(with_digest),
        }
        return hashlib.sha256(
            canonical_json(doc).encode("utf-8")
        ).hexdigest()

    def cache_key(self) -> tuple:
        """The in-memory memo key :func:`experiments.cached_run` uses."""
        return (self.scheme, self.benchmark, self.trace_length,
                self.segment, self.overrides)


def dedup_points(points: Iterable[RunPoint]) -> List[RunPoint]:
    """Order-preserving dedup (figures overlap heavily)."""
    seen = set()
    out: List[RunPoint] = []
    for point in points:
        if point not in seen:
            seen.add(point)
            out.append(point)
    return out


# ---------------------------------------------------------------------------
# On-disk store
# ---------------------------------------------------------------------------


class ResultStore:
    """Content-addressed directory of run payloads.

    Layout: ``<root>/<key[:2]>/<key>.json`` -- one canonical-JSON file
    per run, fanned out over 256 subdirectories so large sweeps do not
    create giant flat directories.  Writes are atomic (same-directory
    tmp file + ``os.replace``), so readers never observe a torn file
    and a killed sweep leaves only complete entries behind.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else default_store_path()
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored payload, or ``None`` on a miss or a corrupt file
        (corrupt entries count as misses and get re-simulated)."""
        path = self.path_for(key)
        try:
            with open(path) as fp:
                return json.load(fp)
        except (OSError, ValueError):
            return None

    def put(self, key: str, payload: Dict[str, object]) -> None:
        """Durably persist one entry.

        The tmp name is unique per call (``mkstemp``), not per
        ``(pid, key)``: two threads of one process storing the same key
        used to race on a shared tmp path, and one could rename the
        other's half-written file into place.  The data is fsynced
        before the rename and the directory entry after it, so a crash
        at any point leaves either the old entry or the complete new
        one -- never a torn file.
        """
        path = self.path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=directory)
        try:
            with os.fdopen(fd, "w") as fp:
                fp.write(canonical_json(payload))
                fp.flush()
                os.fsync(fp.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def delete(self, key: str) -> bool:
        try:
            os.remove(self.path_for(key))
            return True
        except OSError:
            return False

    def keys(self) -> List[str]:
        out: List[str] = []
        for sub in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, sub)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if name.endswith(".json"):
                    out.append(name[: -len(".json")])
        return out

    def __len__(self) -> int:
        return len(self.keys())

    def stats(self) -> Dict[str, object]:
        """Store occupancy summary for ``doram sweep --status``.

        One directory walk: entry count and total payload bytes.  Cheap
        enough to poll during a long distributed drain.
        """
        entries = 0
        total_bytes = 0
        for sub in os.listdir(self.root):
            subdir = os.path.join(self.root, sub)
            if not os.path.isdir(subdir):
                continue
            for name in os.listdir(subdir):
                if not name.endswith(".json"):
                    continue
                entries += 1
                try:
                    total_bytes += os.path.getsize(
                        os.path.join(subdir, name)
                    )
                except OSError:
                    pass
        return {
            "root": self.root,
            "entries": entries,
            "bytes": total_bytes,
        }


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


class PointTimeout(RuntimeError):
    """A run point exceeded its wall-clock budget inside a worker."""


def _simulate_point(point: RunPoint,
                    with_digest: bool = False) -> Dict[str, object]:
    tracer = None
    if with_digest:
        from repro.obs.tracer import Tracer

        tracer = Tracer()
    result = run_scheme(
        point.scheme, point.benchmark, point.trace_length,
        segment=point.segment, tracer=tracer, **dict(point.overrides),
    )
    payload: Dict[str, object] = {
        "schema": STORE_SCHEMA_VERSION,
        "point": {
            "scheme": point.scheme,
            "benchmark": point.benchmark,
            "trace_length": point.trace_length,
            "segment": point.segment,
            "overrides": [list(kv) for kv in point.overrides],
        },
        "result": result.to_json_dict(),
    }
    if tracer is not None:
        from repro.obs.export import trace_digest

        payload["trace_digest"] = trace_digest(tracer.events)
    return payload


def _run_point(point, with_digest: bool) -> Dict[str, object]:
    """Dispatch one point to its simulator.

    Points that carry their own ``execute`` method (the scenario layer's
    ``ScenarioPoint``) run it; plain :class:`RunPoint` instances go
    through the module-global :func:`_simulate_point`, which tests
    monkeypatch -- the late global lookup is deliberate.
    """
    execute = getattr(point, "execute", None)
    if execute is not None:
        return execute(with_digest)
    return _simulate_point(point, with_digest)


def _run_with_deadline_main_thread(
    point, with_digest: bool, timeout_s: float
) -> Dict[str, object]:
    """Deadline enforcement when we own the main thread.

    A daemon :class:`threading.Timer` interrupts the main thread at the
    deadline -- ``pthread_kill(SIGINT)`` where available, so even a
    blocking syscall wakes; ``_thread.interrupt_main`` otherwise, which
    lands between two bytecodes of the (pure-Python) simulation.  The
    work actually *stops*, exactly like the old ``SIGALRM`` path, but
    without the main-thread-only ``signal.signal`` restriction and
    without needing ``SIGALRM`` to exist (Windows).  A genuine Ctrl-C
    is distinguished by the ``fired`` flag: if the interrupt arrives
    before the watchdog fired, it is re-raised untouched.
    """
    import _thread
    import signal

    fired = threading.Event()
    main_ident = threading.main_thread().ident

    def _expire() -> None:
        fired.set()
        try:
            signal.pthread_kill(main_ident, signal.SIGINT)
        except (AttributeError, ValueError, ProcessLookupError,
                RuntimeError, OSError):
            _thread.interrupt_main()

    timer = threading.Timer(timeout_s, _expire)
    timer.daemon = True
    timer.start()
    try:
        result = _run_point(point, with_digest)
    except KeyboardInterrupt:
        if fired.is_set():
            raise PointTimeout(
                f"{point.label}: exceeded the {timeout_s:g}s point budget"
            ) from None
        raise
    finally:
        timer.cancel()
        timer.join(1.0)
    if fired.is_set():
        # The point finished, but the watchdog fired in the window
        # between completion and cancel; its interrupt may still be
        # pending delivery.  Absorb it here so it cannot detonate in
        # the caller.  (The same completion-vs-expiry race existed in
        # the SIGALRM implementation.)
        try:
            time.sleep(0.05)
        except KeyboardInterrupt:
            pass
    return result


def _run_with_deadline_worker_thread(
    point, with_digest: bool, timeout_s: float
) -> Dict[str, object]:
    """Deadline enforcement off the main thread.

    ``interrupt_main`` and signals cannot reach a non-main thread, so
    the point runs in a fresh daemon thread and the caller waits with a
    deadline (the ``concurrent.futures``-style join).  On expiry the
    runaway thread is *abandoned*, not killed -- Python offers no safe
    cross-thread interrupt -- so the caller (the work-queue drain or a
    threaded embedder) gets control back immediately while the zombie
    finishes or dies with the process.  Fresh thread per budgeted call:
    an abandoned worker must never wedge a shared pool slot.
    """
    box: Dict[str, object] = {}

    def _call() -> None:
        try:
            box["result"] = _run_point(point, with_digest)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    thread = threading.Thread(
        target=_call, name=f"point-{point.label}", daemon=True
    )
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise PointTimeout(
            f"{point.label}: exceeded the {timeout_s:g}s point budget"
        )
    error = box.get("error")
    if error is not None:
        raise error
    return box["result"]  # type: ignore[return-value]


def execute_point(
    point: RunPoint,
    with_digest: bool = False,
    timeout_s: Optional[float] = None,
) -> Dict[str, object]:
    """Simulate one point and return its serialized payload.

    Runs in worker processes; must stay importable at module top level
    (``ProcessPoolExecutor`` pickles the function reference, not the
    closure).  ``with_digest`` additionally runs the PR-1 tracer and
    embeds the sha256 trace digest, so equivalence tests can compare
    event-level behaviour across worker layouts, not just aggregates.

    ``point`` is usually a :class:`RunPoint`, but any object exposing
    ``key``/``label``/``execute`` works (see :func:`_run_point`); the
    sweep machinery -- store, retry, timeout -- is point-kind agnostic.

    ``timeout_s`` arms a wall-clock budget and raises
    :class:`PointTimeout` when it expires.  Pool futures cannot be
    cancelled once running, so the budget is enforced from *inside*
    this call, and -- unlike the original ``SIGALRM`` implementation --
    it works anywhere: on the main thread a watchdog timer interrupts
    the simulation between bytecodes; off the main thread (work-queue
    drain loops, threaded embedders) the point runs in a sidecar thread
    joined with a deadline.
    """
    if timeout_s is None:
        return _run_point(point, with_digest)
    if threading.current_thread() is threading.main_thread():
        return _run_with_deadline_main_thread(point, with_digest, timeout_s)
    return _run_with_deadline_worker_thread(point, with_digest, timeout_s)


@dataclass
class SweepResult:
    """Payloads plus execution accounting for one sweep invocation."""

    payloads: Dict[RunPoint, Dict[str, object]]
    #: Points simulated in this invocation (store misses).
    simulated: int = 0
    #: Points served from the store without running.
    store_hits: int = 0
    workers: int = 1
    wall_s: float = 0.0
    store_root: Optional[str] = None
    #: Points that failed even after the bounded retry, keyed to the
    #: final failure reason (``"ExcType: message"``).
    failed: Dict[RunPoint, str] = field(default_factory=dict)
    #: Second attempts performed (at most one per point).
    retried: int = 0

    @property
    def total(self) -> int:
        return len(self.payloads)

    @property
    def points_per_s(self) -> float:
        return self.total / self.wall_s if self.wall_s > 0 else 0.0

    def results(self) -> Dict[RunPoint, SimResult]:
        """Deserialize every payload back to a :class:`SimResult`."""
        return {
            point: SimResult.from_json_dict(payload["result"])
            for point, payload in self.payloads.items()
        }


class SweepFailure(RuntimeError):
    """One or more sweep points failed even after the bounded retry.

    Carries the full :class:`SweepResult` (``.sweep_result``) so callers
    can still report the accounting for the points that did complete.
    """

    def __init__(self, sweep_result: SweepResult) -> None:
        self.sweep_result = sweep_result
        lines = [
            f"{len(sweep_result.failed)} sweep point(s) failed "
            f"after retry:"
        ]
        for point, reason in sweep_result.failed.items():
            lines.append(f"  {point.label}: {reason}")
        super().__init__("\n".join(lines))


def _failure_reason(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def run_sweep(
    points: Iterable[RunPoint],
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    resume: bool = True,
    with_digest: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    timeout_s: Optional[float] = None,
) -> SweepResult:
    """Execute every point, in parallel, resuming from the store.

    ``resume=False`` ignores (but still refreshes) existing store
    entries.  ``workers`` defaults to ``DORAM_SWEEP_WORKERS`` or the
    CPU count; ``workers <= 1`` runs serially in-process, which the
    equivalence tests use as the reference execution.

    ``timeout_s`` bounds each point's wall clock (see
    :func:`execute_point`).  A point that times out or raises gets
    exactly one more attempt; if that also fails, the sweep *keeps
    going* and records the point in :attr:`SweepResult.failed` instead
    of hanging or tearing down the pool -- the caller decides whether a
    partial sweep is fatal.
    """
    points = dedup_points(points)
    if workers is None:
        workers = default_workers()
    started = time.monotonic()
    payloads: Dict[RunPoint, Dict[str, object]] = {}
    failed: Dict[RunPoint, str] = {}
    retried = 0
    keys = {point: point.key(with_digest) for point in points}

    todo: List[RunPoint] = []
    hits = 0
    for point in points:
        cached = store.get(keys[point]) if (store and resume) else None
        if cached is not None and cached.get("schema") == STORE_SCHEMA_VERSION:
            payloads[point] = cached
            hits += 1
        else:
            todo.append(point)
    if progress and hits:
        progress(f"store: {hits}/{len(points)} points already simulated")

    def _record(point: RunPoint, payload: Dict[str, object]) -> None:
        payloads[point] = payload
        if store is not None:
            store.put(keys[point], payload)

    if todo:
        if workers <= 1 or len(todo) == 1:
            for i, point in enumerate(todo):
                if progress:
                    progress(f"run {i + 1}/{len(todo)}: {point.label}")
                try:
                    payload = execute_point(point, with_digest, timeout_s)
                except Exception as exc:  # noqa: BLE001 - retry once
                    retried += 1
                    if progress:
                        progress(
                            f"retry {point.label}: {_failure_reason(exc)}"
                        )
                    try:
                        payload = execute_point(
                            point, with_digest, timeout_s
                        )
                    except Exception as exc2:  # noqa: BLE001
                        failed[point] = _failure_reason(exc2)
                        continue
                _record(point, payload)
        else:
            attempts = {point: 1 for point in todo}
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(execute_point, point, with_digest,
                                timeout_s): point
                    for point in todo
                }
                pending = set(futures)
                done_count = 0
                while pending:
                    done, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                    for future in done:
                        point = futures[future]
                        try:
                            payload = future.result()
                        except Exception as exc:  # noqa: BLE001
                            if attempts[point] <= 1:
                                attempts[point] += 1
                                retried += 1
                                if progress:
                                    progress(
                                        f"retry {point.label}: "
                                        f"{_failure_reason(exc)}"
                                    )
                                try:
                                    retry = pool.submit(
                                        execute_point, point,
                                        with_digest, timeout_s,
                                    )
                                except Exception as submit_exc:  # noqa: BLE001
                                    # Pool already broken: record and
                                    # keep draining what is left.
                                    failed[point] = _failure_reason(
                                        submit_exc
                                    )
                                else:
                                    futures[retry] = point
                                    pending.add(retry)
                                    continue
                            else:
                                failed[point] = _failure_reason(exc)
                            done_count += 1
                            if progress:
                                progress(
                                    f"failed {done_count}/{len(todo)}: "
                                    f"{point.label}: {failed[point]}"
                                )
                            continue
                        _record(point, payload)
                        done_count += 1
                        if progress:
                            progress(
                                f"done {done_count}/{len(todo)}: "
                                f"{point.label}"
                            )

    return SweepResult(
        payloads=payloads,
        simulated=len(todo) - len(failed),
        store_hits=hits,
        workers=workers,
        wall_s=time.monotonic() - started,
        store_root=store.root if store is not None else None,
        failed=failed,
        retried=retried,
    )
