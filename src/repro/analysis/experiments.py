"""One driver per paper table/figure.

Each function reproduces the data behind one exhibit of Section V (or the
motivation figure) and returns plain dictionaries that the CLI and the
pytest-benchmark harness print.  Runs are memoised per process, keyed on
the full configuration, because the figures overlap heavily -- Fig. 9's
D-ORAM/X is the best point of Fig. 11's c sweep, Fig. 13 reuses Fig. 9's
runs, and so on.

Two execution paths share the same drivers:

* **Serial fallback** -- calling a ``fig*`` function directly runs any
  missing point through :func:`cached_run` (an in-process memo).
* **Sweep** -- :func:`figure_points` declares every run a figure needs
  as :class:`~repro.analysis.sweep.RunPoint` objects;
  :func:`run_figures` executes them through the parallel, resumable
  sweep runner, primes the memo with the results, and then evaluates
  the drivers, which find every run already cached.

Scale: the paper simulates 500 M-instruction traces; the default here is
``DORAM_TRACE_LENGTH`` memory accesses per core (env-overridable, read
at call time).  The shapes these functions exist to reproduce are stable
in trace length; the integration tests assert that.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Mapping, Optional, \
    Sequence, Tuple

from repro.analysis.metrics import summarize_best_worst_gmean
from repro.analysis.profiling import ProfileResult, profile_ratio
from repro.analysis.sweep import (
    ResultStore,
    RunPoint,
    SweepFailure,
    SweepResult,
    dedup_points,
    run_sweep,
)
from repro.core.schemes import run_scheme
from repro.core.system import SimResult
from repro.core.tree_split import (
    TABLE_I,
    split_extra_messages,
    split_space_shares,
)
from repro.oram.config import OramConfig
from repro.oram.layout import OramLayout
from repro.sim.stats import geomean
from repro.trace.benchmarks import BENCHMARKS


def default_trace_length() -> int:
    """Memory accesses per core per run, resolved from the environment
    *at call time* so mid-process changes to ``DORAM_TRACE_LENGTH``
    take effect (regression-tested)."""
    return int(os.environ.get("DORAM_TRACE_LENGTH", "2500"))


#: Import-time snapshot, kept for CLI argparse defaults and backwards
#: compatibility; runtime resolution goes through
#: :func:`default_trace_length`.
DEFAULT_TRACE_LENGTH = default_trace_length()

#: All Table III benchmark codes, in the paper's order.
ALL_BENCHMARKS: Tuple[str, ...] = tuple(b.code for b in BENCHMARKS)

_run_cache: Dict[tuple, SimResult] = {}


def cached_run(
    scheme: str,
    benchmark: str,
    trace_length: Optional[int] = None,
    segment: int = 0,
    **overrides,
) -> SimResult:
    """Memoised :func:`~repro.core.schemes.run_scheme`.

    This is the thin serial fallback behind the sweep runner: a sweep
    primes this memo (:func:`prime_cache`), so figure drivers hit it for
    every declared point and only simulate here when called without a
    sweep.
    """
    length = trace_length or default_trace_length()
    key = (scheme, benchmark, length, segment, tuple(sorted(overrides.items())))
    if key not in _run_cache:
        _run_cache[key] = run_scheme(
            scheme, benchmark, length, segment=segment, **overrides
        )
    return _run_cache[key]


def clear_cache() -> None:
    _run_cache.clear()


def prime_cache(results: Mapping[RunPoint, SimResult]) -> int:
    """Load sweep results into the :func:`cached_run` memo.

    Returns the number of newly primed entries.  Existing entries are
    left alone (an in-process run and its store round trip are
    bit-identical, so either is valid).
    """
    primed = 0
    for point, result in results.items():
        key = point.cache_key()
        if key not in _run_cache:
            _run_cache[key] = result
            primed += 1
    return primed


def _benchmarks(benchmarks: Optional[Sequence[str]]) -> Tuple[str, ...]:
    return tuple(benchmarks) if benchmarks else ALL_BENCHMARKS


# ---------------------------------------------------------------------------
# Fig. 4 -- motivation: NS-App degradation under co-run scenarios
# ---------------------------------------------------------------------------

FIG4_SCHEMES = ("baseline", "securemem", "7ns-4ch", "7ns-3ch")


def fig4(
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """NS-App execution-time slowdown vs. solo (1NS), per scheme.

    Returns ``{scheme: {benchmark: slowdown, ..., "best"/"worst"/"gmean"}}``
    -- the paper reports the three summary bars per scheme.
    """
    codes = _benchmarks(benchmarks)
    out: Dict[str, Dict[str, float]] = {}
    for scheme in FIG4_SCHEMES:
        rows: Dict[str, float] = {}
        for code in codes:
            solo = cached_run("1ns", code, trace_length)
            corun = cached_run(scheme, code, trace_length)
            rows[code] = corun.ns_mean_time() / solo.ns_mean_time()
        best, worst, gmean_v = summarize_best_worst_gmean(
            [rows[c] for c in codes]
        )
        rows["best"], rows["worst"], rows["gmean"] = best, worst, gmean_v
        out[scheme] = rows
    return out


# ---------------------------------------------------------------------------
# Table I -- tree-split space distribution and extra messages
# ---------------------------------------------------------------------------


def table1(leaf_level: int = 23) -> List[Dict[str, float]]:
    """Analytic + layout-measured Table I rows for k = 1, 2, 3."""
    rows: List[Dict[str, float]] = []
    for k in (1, 2, 3):
        shares = split_space_shares(k, leaf_level=leaf_level)
        messages = split_extra_messages(k)
        # Cross-check with the actual placement arithmetic on a scaled
        # tree (same share structure, cheap to enumerate).
        config = OramConfig(leaf_level=12 + k, treetop_levels=3,
                            subtree_levels=5)
        layout = OramLayout(
            config,
            home_targets=[(0, i) for i in range(4)],
            home_levels=config.num_levels - k,
            remote_targets=[(1, 0), (2, 0), (3, 0)],
        )
        measured = layout.channel_share()
        rows.append({
            "k": k,
            "secure_share": shares["secure"],
            "normal_share": shares["normal"],
            "paper_secure": TABLE_I[k]["secure"],
            "paper_normal": TABLE_I[k]["normal"],
            "layout_secure": measured.get(0, 0.0),
            "layout_normal": sum(
                v for ch, v in measured.items() if ch != 0
            ) / 3.0,
            "extra_secure_msgs": (
                messages.secure_short_reads
                + messages.secure_responses
                + messages.secure_writes
            ),
            "normal_msgs_min": 3 * messages.normal_min,
            "normal_msgs_max": 3 * messages.normal_max,
        })
    return rows


# ---------------------------------------------------------------------------
# Fig. 8 -- channel access-latency balance
# ---------------------------------------------------------------------------


def fig8(
    benchmark: str = "libq",
    trace_length: Optional[int] = None,
) -> Dict[str, float]:
    """Latency under channel partitioning and secure-channel contention."""
    solo = cached_run("1ns", benchmark, trace_length)
    four = cached_run("7ns-4ch", benchmark, trace_length)
    three = cached_run("7ns-3ch", benchmark, trace_length)
    doram = cached_run("doram", benchmark, trace_length)

    # Secure vs normal channel latency under D-ORAM (Fig. 8(c)).
    secure_rows = [
        row for name, row in doram.channels.items() if name.startswith("ch0")
    ]
    normal_rows = [
        row for name, row in doram.channels.items()
        if not name.startswith("ch0") and row["reads"] > 0
    ]

    def _weighted(rows: List[Dict[str, float]], field: str) -> float:
        total = sum(r["reads"] for r in rows)
        if total == 0:
            return 0.0
        return sum(r[field] * r["reads"] for r in rows) / total

    return {
        "solo_read_ns": solo.read_latency_ns(),
        "ns4ch_read_ns": four.read_latency_ns(),
        "ns3ch_read_ns": three.read_latency_ns(),
        "doram_secure_ch_read_ns": _weighted(secure_rows, "normal_read_ns"),
        "doram_normal_ch_read_ns": _weighted(normal_rows, "normal_read_ns"),
    }


# ---------------------------------------------------------------------------
# Fig. 9 -- headline: normalized NS execution time per scheme
# ---------------------------------------------------------------------------


def fig11(
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
    c_values: Sequence[int] = tuple(range(8)),
) -> Dict[str, Dict[str, float]]:
    """Secure-channel sharing sweep: time vs. Baseline for c = 0..7.

    Returns ``{benchmark: {"c0".."c7": rel, "7ns-3ch": rel,
    "7ns-4ch": rel, "best_c": value}}``.
    """
    codes = _benchmarks(benchmarks)
    out: Dict[str, Dict[str, float]] = {}
    for code in codes:
        base = cached_run("baseline", code, trace_length).ns_mean_time()
        row: Dict[str, float] = {}
        best_c, best_time = None, None
        for c in c_values:
            # c = 7 admits every NS-App, which is plain D-ORAM; use the
            # same cache entry Fig. 9 uses.
            scheme = "doram" if c == 7 else f"doram/{c}"
            time_c = cached_run(scheme, code, trace_length).ns_mean_time()
            row[f"c{c}"] = time_c / base
            if best_time is None or time_c < best_time:
                best_c, best_time = c, time_c
        row["7ns-3ch"] = (
            cached_run("7ns-3ch", code, trace_length).ns_mean_time() / base
        )
        row["7ns-4ch"] = (
            cached_run("7ns-4ch", code, trace_length).ns_mean_time() / base
        )
        row["best_c"] = float(best_c)
        out[code] = row
    return out


def fig9(
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Normalized execution time: D-ORAM, D-ORAM/X, D-ORAM+1, D-ORAM+1/4.

    D-ORAM/X is the best point of the Fig. 11 sweep (the paper's
    definition), so this reuses those runs through the cache.
    """
    codes = _benchmarks(benchmarks)
    sweep = fig11(codes, trace_length)
    out: Dict[str, Dict[str, float]] = {}
    for code in codes:
        base = cached_run("baseline", code, trace_length).ns_mean_time()
        row = {
            "baseline": 1.0,
            "doram": cached_run("doram", code, trace_length).ns_mean_time() / base,
            "doram_x": min(
                sweep[code][f"c{c}"] for c in range(8)
            ),
            "doram+1": cached_run("doram+1", code, trace_length).ns_mean_time() / base,
            "doram+1/4": cached_run(
                "doram+1/4", code, trace_length
            ).ns_mean_time() / base,
        }
        out[code] = row
    gmean_row = {
        key: geomean([out[code][key] for code in codes])
        for key in ("baseline", "doram", "doram_x", "doram+1", "doram+1/4")
    }
    out["gmean"] = gmean_row
    return out


# ---------------------------------------------------------------------------
# Fig. 10 -- tree-expansion overhead (k = 1..3)
# ---------------------------------------------------------------------------


def fig10(
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
    k_values: Sequence[int] = (1, 2, 3),
) -> Dict[str, Dict[str, float]]:
    """Execution time of D-ORAM+k relative to D-ORAM, plus the average
    added overhead per k (the paper: +1.02 %, +2.01 %, +3.29 %)."""
    codes = _benchmarks(benchmarks)
    out: Dict[str, Dict[str, float]] = {}
    for code in codes:
        base = cached_run("doram", code, trace_length).ns_mean_time()
        row = {"doram": 1.0}
        for k in k_values:
            row[f"k{k}"] = (
                cached_run(f"doram+{k}", code, trace_length).ns_mean_time()
                / base
            )
        out[code] = row
    avg_row = {"doram": 1.0}
    for k in k_values:
        avg_row[f"k{k}"] = geomean([out[code][f"k{k}"] for code in codes])
    out["gmean"] = avg_row
    return out


# ---------------------------------------------------------------------------
# Fig. 12 -- profiling-guided c selection
# ---------------------------------------------------------------------------


def fig12(
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
) -> Dict[str, Dict[str, object]]:
    """Per benchmark: profiled ratio (different segment) vs. measured best c.

    ``agrees`` is True when the rule's category (small: c < 4, large:
    c >= 4) matches the sweep's best configuration.
    """
    codes = _benchmarks(benchmarks)
    sweep = fig11(codes, trace_length)
    length = trace_length or default_trace_length()
    out: Dict[str, Dict[str, object]] = {}
    for code in codes:
        profile: ProfileResult = profile_ratio(
            code, trace_length=length, segment=1, runner=cached_run
        )
        best_c = int(sweep[code]["best_c"])
        # The measured preference compares the average of the small-c
        # half of the sweep against the large-c half; with the nearly
        # flat sweeps some benchmarks produce, the raw argmin is noise
        # while the half-means capture the paper's "prefers fewer/more
        # copies" categories robustly.
        small_mean = sum(sweep[code][f"c{c}"] for c in range(4)) / 4
        large_mean = sum(sweep[code][f"c{c}"] for c in range(4, 8)) / 4
        measured_category = "small" if small_mean < large_mean else "large"
        out[code] = {
            "ratio": profile.ratio,
            "predicted": profile.decision.category,
            "best_c": best_c,
            "measured": measured_category,
            "agrees": profile.decision.category == measured_category,
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 13 -- NS access-latency reduction
# ---------------------------------------------------------------------------


def fig13(
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Read/write NS latency of D-ORAM+1 and D-ORAM/4 vs. Baseline."""
    codes = _benchmarks(benchmarks)
    out: Dict[str, Dict[str, float]] = {}
    for code in codes:
        base = cached_run("baseline", code, trace_length)
        row: Dict[str, float] = {}
        for label, scheme in (("doram+1", "doram+1"), ("doram/4", "doram/4")):
            run = cached_run(scheme, code, trace_length)
            row[f"{label}_read"] = (
                run.read_latency_ns() / base.read_latency_ns()
            )
            row[f"{label}_write"] = (
                run.write_latency_ns() / base.write_latency_ns()
            )
        out[code] = row
    out["gmean"] = {
        key: geomean([out[code][key] for code in codes])
        for key in next(iter(out.values())).keys()
    }
    return out


# ---------------------------------------------------------------------------
# Sweep integration: declared run-points per figure
# ---------------------------------------------------------------------------

#: Figure name -> driver callable (``table1`` takes no benchmarks).
FIGURE_DRIVERS: Dict[str, Callable] = {
    "fig4": fig4,
    "table1": lambda benchmarks=None, trace_length=None: table1(),
    "fig8": lambda benchmarks=None, trace_length=None: fig8(
        benchmarks[0] if benchmarks else "libq", trace_length
    ),
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
}

ALL_FIGURES: Tuple[str, ...] = tuple(FIGURE_DRIVERS)

#: Scheme sets per figure; mirrors what each driver's body requests
#: through :func:`cached_run`.
_FIG11_SCHEMES = (
    ("baseline",)
    + tuple(f"doram/{c}" for c in range(7))
    + ("doram", "7ns-3ch", "7ns-4ch")
)
_FIGURE_SCHEMES: Dict[str, Tuple[str, ...]] = {
    "fig4": ("1ns",) + FIG4_SCHEMES,
    "table1": (),
    "fig9": _FIG11_SCHEMES + ("doram+1", "doram+1/4"),
    "fig10": ("doram", "doram+1", "doram+2", "doram+3"),
    "fig11": _FIG11_SCHEMES,
    "fig13": ("baseline", "doram+1", "doram/4"),
}


def figure_points(
    figure: str,
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
) -> List[RunPoint]:
    """Every simulation ``figure`` needs, as declarative run-points.

    The companion test suite cross-checks these declarations against
    the drivers: priming a sweep of exactly these points must leave the
    driver zero simulations to run.
    """
    if figure not in FIGURE_DRIVERS:
        raise ValueError(f"unknown figure {figure!r} "
                         f"(known: {', '.join(ALL_FIGURES)})")
    codes = _benchmarks(benchmarks)
    length = trace_length or default_trace_length()
    if figure == "fig8":
        code = codes[0] if benchmarks else "libq"
        return [
            RunPoint(scheme, code, length)
            for scheme in ("1ns", "7ns-4ch", "7ns-3ch", "doram")
        ]
    if figure == "fig12":
        from repro.analysis.profiling import PROFILE_SCHEMES

        points = figure_points("fig11", codes, length)
        points += [
            RunPoint(scheme, code, length, segment=1)
            for code in codes for scheme in PROFILE_SCHEMES
        ]
        return points
    return [
        RunPoint(scheme, code, length)
        for code in codes for scheme in _FIGURE_SCHEMES[figure]
    ]


def points_for_figures(
    figures: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
) -> List[RunPoint]:
    """Deduplicated union of run-points over several figures."""
    points: List[RunPoint] = []
    for figure in figures:
        points.extend(figure_points(figure, benchmarks, trace_length))
    return dedup_points(points)


def run_figures(
    figures: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    resume: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    timeout_s: Optional[float] = None,
) -> Tuple[Dict[str, object], SweepResult]:
    """Sweep every point the figures need, then evaluate their drivers.

    Returns ``({figure: driver_output}, sweep_result)``.  The drivers
    consume the primed memo, so after the sweep they are pure
    arithmetic -- no simulation happens on the calling thread.

    Raises :class:`~repro.analysis.sweep.SweepFailure` if any point
    failed even after the sweep's bounded retry: the drivers need every
    declared point, and silently re-simulating a failed point inline
    (via the :func:`cached_run` fallback) would hide the failure and
    hang the exact way the sweep timeout exists to prevent.
    """
    points = points_for_figures(figures, benchmarks, trace_length)
    sweep_result = run_sweep(
        points, workers=workers, store=store, resume=resume,
        progress=progress, timeout_s=timeout_s,
    )
    if sweep_result.failed:
        raise SweepFailure(sweep_result)
    prime_cache(sweep_result.results())
    outputs = {
        figure: FIGURE_DRIVERS[figure](benchmarks, trace_length)
        for figure in figures
    }
    return outputs, sweep_result
